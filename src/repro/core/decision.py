"""The per-epoch virtual-node decision process (paper §II-C).

At the end of every epoch each virtual node:

1. checks its partition's availability (eq. 2) against the ring's
   threshold and **replicates** to the eq. 3 best server when short;
2. otherwise, with a *negative* balance for the last ``f`` epochs,
   **suicides** when availability stays satisfied without it, else
   **migrates** to a cheaper server closer to its clients;
3. with a *positive* balance for the last ``f`` epochs, **replicates**
   if its popularity compensates the added consistency cost and the
   candidate's rent;
4. otherwise does nothing.

Utilities are floored at the epoch's lowest virtual rent so unpopular
nodes stop migrating once they sit on the cheapest viable server.
All bookkeeping flows through the transfer engine (bandwidth budgets),
the replica catalog (storage) and the agent registry (balances), so a
decision that cannot be executed this epoch is simply retried later.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.topology import Cloud
from repro.core.agent import AgentRegistry, VNodeAgent
from repro.core.availability import AvailabilityIndex, availability, pair_gain
from repro.core.board import PriceBoard
from repro.core.economy import RentModel
from repro.core.placement import PlacementScorer
from repro.net.membership import OracleMembership
from repro.ring.partition import (
    Partition,
    PartitionId,
    gather_float,
    gather_int,
)
from repro.ring.virtualring import RingSet
from repro.store.consistency import DEFAULT_CONSISTENCY, ConsistencyModel
from repro.store.replica import CatalogListener, ReplicaCatalog
from repro.store.transfer import TransferEngine, TransferKind
from repro.workload.mix import EpochLoad

#: Epoch-kernel implementations accepted by :class:`DecisionEngine` and
#: :class:`repro.sim.config.SimConfig`.  ``"vectorized"`` is the default
#: production kernel (batched eq. 5 settlement + incremental eq. 2
#: availability); ``"scalar"`` is the straight-line reference the
#: property tests and the perf harness compare against.
KERNELS = ("vectorized", "scalar")


class PolicyError(ValueError):
    """Raised for invalid policy parameters."""


class KernelError(ValueError):
    """Raised for unknown epoch-kernel names."""


@dataclass(frozen=True)
class EconomicPolicy:
    """Tunable knobs of the §II-C decision process.

    ``hysteresis`` is the paper's ``f``: how many consecutive epochs of
    one-signed balance trigger an action.  ``revenue_per_query``
    normalises query utility to monetary units (eq. 5's u).
    ``utility_floor_to_min_rent`` implements the anti-thrashing rule;
    ``repair_iterations`` bounds how many replicas an SLA repair may add
    in a single epoch; ``max_replicas`` is an optional hard cap on the
    economically chosen replication degree (SLA repairs ignore it).
    """

    hysteresis: int = 3
    revenue_per_query: float = 0.01
    utility_floor_to_min_rent: bool = True
    repair_iterations: int = 8
    rent_weight: float = 1.0
    migration_margin: float = 0.05
    storage_headroom: float = 0.1
    move_large_via_replication: bool = True
    max_replicas: Optional[int] = None
    consistency: ConsistencyModel = DEFAULT_CONSISTENCY

    def __post_init__(self) -> None:
        if self.hysteresis < 1:
            raise PolicyError(
                f"hysteresis must be >= 1, got {self.hysteresis}"
            )
        if self.revenue_per_query < 0:
            raise PolicyError(
                f"revenue_per_query must be >= 0, got {self.revenue_per_query}"
            )
        if self.repair_iterations < 1:
            raise PolicyError(
                f"repair_iterations must be >= 1, got {self.repair_iterations}"
            )
        if self.rent_weight < 0:
            raise PolicyError(
                f"rent_weight must be >= 0, got {self.rent_weight}"
            )
        if not 0.0 <= self.migration_margin < 1.0:
            raise PolicyError(
                f"migration_margin must be in [0, 1), got "
                f"{self.migration_margin}"
            )
        if not 0.0 <= self.storage_headroom < 1.0:
            raise PolicyError(
                f"storage_headroom must be in [0, 1), got "
                f"{self.storage_headroom}"
            )
        if self.max_replicas is not None and self.max_replicas < 1:
            raise PolicyError(
                f"max_replicas must be >= 1, got {self.max_replicas}"
            )


@dataclass
class DecisionStats:
    """What the decision pass did in one epoch."""

    repairs: int = 0
    economic_replications: int = 0
    migrations: int = 0
    suicides: int = 0
    deferred: int = 0
    unsatisfied_partitions: int = 0
    lost_partitions: int = 0

    @property
    def total_actions(self) -> int:
        return (
            self.repairs
            + self.economic_replications
            + self.migrations
            + self.suicides
        )


@dataclass
class _FlatState:
    """Slot-ordered live replica/agent incidence (vectorized kernel).

    ``pids[p]`` owns replicas ``offsets[p]:offsets[p+1]`` of the
    parallel per-replica arrays, in catalog placement order, restricted
    to live servers.  ``rep_rows`` are the owning agents' ledger rows
    (−1 where the registry rows could not be aligned with the catalog's
    member order; ``aligned[p]`` aggregates that per partition).
    ``pid_slots[p]`` is segment ``p``'s dense
    :class:`~repro.ring.partition.PartitionIndex` slot and
    ``seg_by_slot`` the inverse scatter (−1 for unrepresented slots), so
    per-partition vectors (query counts, availability) gather straight
    into segment order.  Valid while the (catalog, registry, cloud,
    membership-view) version key holds — i.e. until any membership
    mutation or belief flip — so steady-state epochs reuse it whole.
    """

    key: Tuple[int, ...]
    pids: List[PartitionId]
    pid_slots: np.ndarray
    seg_by_slot: np.ndarray
    offsets: np.ndarray
    counts: np.ndarray
    rep_slots: np.ndarray
    rep_sids: np.ndarray
    rep_rows: np.ndarray
    aligned: np.ndarray
    all_aligned: bool
    n_slots: int


class _IncidenceJournal(CatalogListener):
    """Catalog-delta journal feeding the incremental incidence splice.

    Accumulates, between two alignment snapshots, which partitions'
    replica segments changed — and whether anything *structural*
    happened that invalidates the cached segment layout wholesale: a
    partition appearing or vanishing (the catalog's pid order shifts),
    a server drop, a split, or simply more touched partitions than the
    cap (at which point a full rebuild is cheaper anyway).  ``events``
    counts callbacks seen, so the consumer can prove the journal covers
    every catalog version bump since its anchor.
    """

    __slots__ = ("touched", "structural", "events", "_cap")

    def __init__(self, cap: int = 512) -> None:
        self.touched: set = set()
        self.structural = False
        self.events = 0
        self._cap = cap

    def _touch(self, pid: PartitionId) -> None:
        touched = self.touched
        if len(touched) < self._cap:
            touched.add(pid)
        else:
            self.structural = True

    def replica_added(self, pid, server_id, servers) -> None:
        self.events += 1
        if len(servers) == 1:
            # First replica: a new pid key changes the view's segment
            # order — the cached layout no longer applies.
            self.structural = True
        else:
            self._touch(pid)

    def replica_removed(self, pid, server_id, servers) -> None:
        self.events += 1
        if not servers:
            self.structural = True
        else:
            self._touch(pid)

    def server_dropped(self, server_id, lost) -> None:
        self.events += 1
        self.structural = True

    def partition_split(self, parent, low, high, servers) -> None:
        self.events += 1
        self.structural = True

    def rebase(self) -> None:
        """Forget everything — a fresh alignment snapshot was taken."""
        self.touched.clear()
        self.structural = False
        self.events = 0


@dataclass
class _AlignCache:
    """One catalog↔ledger alignment snapshot (shared-index path).

    ``key`` is ``(catalog.version, registry.version, registry
    compactions)`` — deliberately *excluding* the cloud and membership
    versions: the row alignment depends only on catalog member order
    and ledger rows, so pure churn epochs (server arrivals, belief
    flips) reuse the arrays wholesale.  ``slot_to_seg`` scatters a
    partition-index slot to its segment position in the snapshot's
    ``view.pids`` order; ``reg_pos`` anchors the registry's mutation
    journal.
    """

    key: Tuple[int, int, int]
    rows_all: np.ndarray
    aligned_all: np.ndarray
    cat_slots: np.ndarray
    offsets_all: np.ndarray
    slot_to_seg: np.ndarray
    reg_pos: int


class DecisionEngine:
    """Runs settlement (eq. 5) and decisions (§II-C) for the whole cloud."""

    def __init__(self, cloud: Cloud, rings: RingSet,
                 catalog: ReplicaCatalog, registry: AgentRegistry,
                 transfers: TransferEngine,
                 policy: EconomicPolicy,
                 rent_model: Optional[RentModel] = None,
                 kernel: str = "vectorized",
                 avail_index: Optional[AvailabilityIndex] = None,
                 membership=None) -> None:
        if kernel not in KERNELS:
            raise KernelError(
                f"kernel must be one of {KERNELS}, got {kernel!r}"
            )
        self._rent_model = rent_model if rent_model is not None else RentModel()
        self._cloud = cloud
        # The MembershipView seam: every liveness read below goes
        # through ``self._membership`` — the oracle default delegates
        # straight to the cloud (pre-existing behavior, byte-for-byte),
        # a gossip-backed service substitutes *believed* columns.
        self._membership = (
            membership if membership is not None
            else OracleMembership(cloud)
        )
        self._rings = rings
        self._catalog = catalog
        self._registry = registry
        self._transfers = transfers
        self._policy = policy
        self._kernel = kernel
        # Eq. 2 memo keyed by the sorted live replica set (scalar kernel
        # only).  Valid for the lifetime of the engine: server ids are
        # never reused and pairwise diversity/confidence are immutable,
        # so a replica set's availability can never change value.
        self._avail_memo: Dict[Tuple[int, ...], float] = {}
        self._live_ids: frozenset = frozenset()
        self._index: Optional[AvailabilityIndex] = None
        if kernel == "vectorized":
            self._index = (
                avail_index if avail_index is not None
                else AvailabilityIndex(cloud, catalog)
            )
        # Incremental incidence maintenance (vectorized kernel): the
        # alignment snapshot plus the catalog-delta journal that lets
        # mutation epochs splice touched segments instead of re-sorting
        # the whole ledger.  Counters and the cross-check flag are the
        # test surface for the splice-vs-rebuild equivalence contract.
        self._align_cache: Optional[_AlignCache] = None
        self._cat_journal = _IncidenceJournal()
        if kernel == "vectorized":
            catalog.add_listener(self._cat_journal)
        self.align_splices = 0
        self.align_rebuilds = 0
        self.align_reuses = 0
        #: When True, every splice is immediately verified against a
        #: full rebuild (tests; far too slow for production epochs).
        self.align_check = False
        # Vectorized-kernel caches: the flat replica/agent incidence
        # structure (valid while catalog, registry and cloud versions
        # hold), the rings' work list, and the confidence vector.
        self._flat_cache: Optional[_FlatState] = None
        self._work_cache: Optional[
            Tuple[object, List[Tuple[Partition, float]],
                  Dict[PartitionId, float]]
        ] = None
        self._work_slots_cache: Optional[np.ndarray] = None
        self._thr_by_slot_cache: Optional[np.ndarray] = None
        self._conf_cache: Optional[Tuple[int, np.ndarray]] = None
        # Repair-wavefront exhaustion proofs, keyed by partition size:
        # the surviving destinations (mask-feasible slots whose batched
        # replication budget still fits the bytes), computed as one
        # grouped vector pass and revalidated by (batch reservation
        # count, scorer enable clock) — the only events that can move
        # them.  Reset at every decision pass.
        self._exhausted_repair: Dict[int, Tuple] = {}
        #: Per-slot query totals of the last batched settlement and the
        #: cloud version they were computed under — the eq. 1 query-load
        #: handoff consumed by :class:`repro.core.economy.CloudCostIndex`.
        self.query_totals: Optional[np.ndarray] = None
        self.query_totals_version: int = -1

    @property
    def kernel(self) -> str:
        return self._kernel

    @property
    def avail_index(self) -> Optional[AvailabilityIndex]:
        """The incremental eq. 2 cache (None under the scalar kernel)."""
        return self._index

    # -- settlement (eq. 5) --------------------------------------------------

    def settle(self, load: EpochLoad, board: PriceBoard,
               g_of_app: Optional[Dict[int, np.ndarray]] = None) -> None:
        """Charge queries to servers and record every agent's balance.

        Under the uniform geography of §III-A a partition's epoch
        queries are split equally among its live replicas.  With a
        discrete client geography, replicas attract queries in
        proportion to their eq. 4 proximity weight g — clients route
        to nearby copies — so close replicas both serve more traffic
        and earn more per query.  Each agent's utility is floored at
        the epoch's minimum rent (§II-C anti-thrashing) and its
        server's posted price is charged as rent.
        """
        if self._kernel == "vectorized":
            self._settle_batched(load, board, g_of_app)
        else:
            self._settle_scalar(load, board, g_of_app)

    def _settle_scalar(self, load: EpochLoad, board: PriceBoard,
                       g_of_app: Optional[Dict[int, np.ndarray]] = None
                       ) -> None:
        """Reference eq. 5 settlement: one Python pass per replica."""
        floor = (
            board.scan_min_price()
            if self._policy.utility_floor_to_min_rent else 0.0
        )
        for pid in self._catalog.partitions():
            servers = self._live_replicas(pid)
            if not servers:
                continue
            queries = load.queries_for(pid)
            g_vec = None
            if g_of_app is not None:
                g_vec = g_of_app.get(pid.app_id)
            if g_vec is None:
                shares = [queries / len(servers)] * len(servers)
                gs = [1.0] * len(servers)
            else:
                gs = [
                    float(g_vec[self._cloud.slot(sid)]) for sid in servers
                ]
                g_total = sum(gs)
                if g_total <= 0:
                    shares = [queries / len(servers)] * len(servers)
                else:
                    shares = [queries * g / g_total for g in gs]
            for sid, share, g in zip(servers, shares, gs):
                server = self._cloud.server(sid)
                if share:
                    server.record_queries(share)
                utility = self._policy.revenue_per_query * share * g
                utility = max(utility, floor)
                rent = board.price(sid)
                agent = self._registry.get(pid, sid)
                agent.record(utility, rent)

    def _flat_state(self) -> _FlatState:
        """The epoch kernel's live replica/agent incidence, cached.

        Rebuilt only when the catalog, registry, cloud or membership
        view's version moved (any membership mutation or belief flip);
        mutation-free epochs — the steady state — reuse the whole
        structure.
        """
        key = (
            self._catalog.version,
            self._registry.version,
            self._cloud.version,
            self._membership.version,
        )
        cached = self._flat_cache
        if cached is not None and cached.key == key:
            return cached
        cloud = self._cloud
        view = self._catalog.flat_view()
        ids = cloud.server_ids
        n_slots = len(ids)
        n_all = len(view.server_ids)
        if not n_slots or not n_all:
            flat = _FlatState(
                key=key, pids=[],
                pid_slots=np.zeros(0, dtype=np.intp),
                seg_by_slot=np.zeros(0, dtype=np.intp),
                offsets=np.zeros(1, dtype=np.intp),
                counts=np.zeros(0, dtype=np.intp),
                rep_slots=np.zeros(0, dtype=np.intp),
                rep_sids=np.zeros(0, dtype=np.int64),
                rep_rows=np.zeros(0, dtype=np.intp),
                aligned=np.zeros(0, dtype=bool),
                all_aligned=True, n_slots=n_slots,
            )
            self._flat_cache = flat
            return flat
        max_id = max(ids)
        id_to_slot = np.full(max_id + 2, -1, dtype=np.int64)
        id_to_slot[np.asarray(ids, dtype=np.int64)] = np.arange(n_slots)
        alive = self._membership.believed_vector()
        sids_all = np.asarray(view.server_ids, dtype=np.int64)
        slots_all = id_to_slot[np.minimum(sids_all, max_id + 1)]
        known = slots_all >= 0
        live_rep = known & alive[np.where(known, slots_all, 0)]
        offsets_all = np.asarray(view.offsets, dtype=np.intp)
        counts_all = np.diff(offsets_all)
        kept = np.add.reduceat(live_rep.astype(np.intp), offsets_all[:-1])
        # Registry ledger rows aligned with the catalog's member order.
        # Rows carry their partition's dense index slot and a
        # spawn/rehome sequence, so the alignment is reconstructed in
        # row space — one lexsort plus block gathers, no Python
        # iteration per partition.  Any segment whose row block cannot
        # be matched 1:1 (and, below, any row whose server disagrees
        # with the catalog) is routed to the keyed fallback.
        rows_all, aligned_all, cat_slots = self._aligned_rows(
            view, offsets_all, counts_all, n_all
        )
        sid_of_row = self._registry.ledger.server_id_vector()
        valid = rows_all >= 0
        row_sid = np.where(
            valid, sid_of_row[np.where(valid, rows_all, 0)], -1
        )
        rep_ok = valid & (row_sid == sids_all)
        part_ok = aligned_all & np.logical_and.reduceat(
            rep_ok | ~live_rep, offsets_all[:-1]
        )
        live_part = kept > 0
        pids = [
            pid
            for pid, keep in zip(view.pids, live_part.tolist())
            if keep
        ]
        counts = kept[live_part]
        offsets = np.zeros(len(pids) + 1, dtype=np.intp)
        np.cumsum(counts, out=offsets[1:])
        aligned = part_ok[live_part]
        rows = np.where(rep_ok, rows_all, -1)
        if self._index is not None:
            pindex = self._index.partition_index
            pid_slots = (
                cat_slots[live_part].astype(np.intp)
                if cat_slots is not None
                else pindex.slots_of(pids)
            )
            seg_by_slot = np.full(len(pindex), -1, dtype=np.intp)
            seg_by_slot[pid_slots] = np.arange(len(pids), dtype=np.intp)
        else:
            pid_slots = np.zeros(0, dtype=np.intp)
            seg_by_slot = np.zeros(0, dtype=np.intp)
        flat = _FlatState(
            key=key,
            pids=pids,
            pid_slots=pid_slots,
            seg_by_slot=seg_by_slot,
            offsets=offsets,
            counts=counts,
            rep_slots=slots_all[live_rep],
            rep_sids=sids_all[live_rep],
            rep_rows=rows[live_rep],
            aligned=aligned,
            all_aligned=bool(aligned.all()),
            n_slots=n_slots,
        )
        self._flat_cache = flat
        return flat

    def _aligned_rows(self, view, offsets_all: np.ndarray,
                      counts_all: np.ndarray, n_all: int
                      ) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
        """Ledger rows in catalog replica order, plus per-segment flags
        (and, on the vectorized path, every catalog pid's index slot).

        Vectorized path, incrementally maintained: the alignment is
        cached against (catalog version, registry version, ledger
        compactions) — notably *not* the cloud/membership versions, so
        pure churn epochs reuse it untouched.  When the versions moved
        but the catalog/registry journals prove the delta was a small
        set of touched partitions, only those segments are rebuilt
        (from the registry's maintained row mirror) and the untouched
        regions are spliced across as contiguous block copies.  The
        full (slot, spawn-sequence) lexsort — whose per-partition block
        order mirrors the catalog's placement order because spawn
        appends and rehome re-sequences to the end, the same mutations
        in the same order the catalog's member lists saw — survives in
        :meth:`_rebuild_alignment` as the structural/fallback path, and
        is what splices are cross-checked against in the tests.  A
        segment whose row block cannot be matched 1:1 with the catalog
        is flagged misaligned (−1 rows) on every path alike.  The slow
        keyed path — one Python lookup per partition — serves
        registries without a shared partition index.
        """
        registry = self._registry
        pindex = (
            self._index.partition_index if self._index is not None else None
        )
        if pindex is not None and registry.partition_index is pindex:
            cache = self._align_cache
            key = (
                self._catalog.version, registry.version,
                registry.compactions,
            )
            if cache is not None and cache.key == key:
                # Pure cloud/membership movement: the alignment depends
                # on neither, so churn epochs reuse the arrays whole.
                self.align_reuses += 1
                return cache.rows_all, cache.aligned_all, cache.cat_slots
            spliced = None
            if cache is not None:
                touched = self._splice_touched(cache)
                if touched is not None:
                    spliced = self._splice_alignment(
                        cache, touched, view, offsets_all, counts_all,
                        n_all, key,
                    )
            if spliced is not None:
                self.align_splices += 1
                if self.align_check:
                    self._verify_alignment(
                        spliced, view, offsets_all, counts_all, n_all, key
                    )
                cache = spliced
            else:
                cache = self._rebuild_alignment(
                    view, offsets_all, counts_all, n_all, key
                )
                self.align_rebuilds += 1
            self._align_cache = cache
            self._cat_journal.rebase()
            return cache.rows_all, cache.aligned_all, cache.cat_slots
        rows_all = np.empty(n_all, dtype=np.intp)
        aligned_all = np.ones(len(counts_all), dtype=bool)
        rows_of = registry.rows_of
        counts_list = counts_all.tolist()
        pos = 0
        for i, pid in enumerate(view.pids):
            n = counts_list[i]
            rows = rows_of(pid)
            if rows is not None and len(rows) == n:
                rows_all[pos:pos + n] = rows
            else:
                rows_all[pos:pos + n] = -1
                aligned_all[i] = False
            pos += n
        return rows_all, aligned_all, None

    def _splice_touched(self, cache: _AlignCache) -> Optional[set]:
        """The touched-partition set, when the journals prove the delta.

        None routes to the full rebuild: something structural happened
        (pid order shifted, server drop, split, compaction, journal
        overflow) or a version bump is unaccounted for — the splice
        must never run on an incomplete delta.
        """
        journal = self._cat_journal
        if journal.structural:
            return None
        registry = self._registry
        cat_version, reg_version, compactions = cache.key
        if registry.compactions != compactions:
            return None
        if self._catalog.version - cat_version != journal.events:
            return None
        reg_touched = registry.mutations_since(cache.reg_pos)
        if reg_touched is None:
            return None
        if len(reg_touched) != registry.version - reg_version:
            return None
        touched = set(journal.touched)
        touched.update(reg_touched)
        return touched

    def _splice_alignment(self, cache: _AlignCache, touched: set,
                          view, offsets_all: np.ndarray,
                          counts_all: np.ndarray, n_all: int,
                          key: Tuple[int, int, int]
                          ) -> Optional[_AlignCache]:
        """Rebuild only the touched segments; block-copy the rest.

        The non-structural guarantee means the view's pid order — and
        therefore the segment layout — is unchanged, so every untouched
        region is one contiguous slice in both the old and new
        per-replica arrays.  Touched segments re-read the registry's
        row mirror, with exactly the slow path's length check deciding
        the per-segment aligned flag.  Any inconsistency (unknown pid,
        shifted gap length) returns None — rebuild instead.
        """
        registry = self._registry
        pindex = self._index.partition_index
        slot_to_seg = cache.slot_to_seg
        n_segs = len(counts_all)
        if n_segs != len(cache.offsets_all) - 1:
            return None
        segs = set()
        for pid in touched:
            slot = pindex.get(pid)
            if slot is None or not 0 <= slot < len(slot_to_seg):
                return None
            seg = int(slot_to_seg[slot])
            if seg < 0:
                return None
            segs.add(seg)
        rows_all = np.empty(n_all, dtype=np.intp)
        aligned_all = cache.aligned_all.copy()
        old_rows = cache.rows_all
        old_off = cache.offsets_all
        rows_of = registry.rows_of
        pids = view.pids
        prev = 0
        for seg in sorted(segs) + [n_segs]:
            if seg > prev:
                o0, o1 = old_off[prev], old_off[seg]
                b0, b1 = offsets_all[prev], offsets_all[seg]
                if o1 - o0 != b1 - b0:
                    return None
                rows_all[b0:b1] = old_rows[o0:o1]
            if seg == n_segs:
                break
            lo, hi = offsets_all[seg], offsets_all[seg + 1]
            rows = rows_of(pids[seg])
            if rows is not None and len(rows) == hi - lo:
                rows_all[lo:hi] = rows
                aligned_all[seg] = True
            else:
                rows_all[lo:hi] = -1
                aligned_all[seg] = False
            prev = seg + 1
        return _AlignCache(
            key=key,
            rows_all=rows_all,
            aligned_all=aligned_all,
            cat_slots=cache.cat_slots,
            offsets_all=offsets_all.copy(),
            slot_to_seg=slot_to_seg,
            reg_pos=registry.mutation_position,
        )

    def _rebuild_alignment(self, view, offsets_all: np.ndarray,
                           counts_all: np.ndarray, n_all: int,
                           key: Tuple[int, int, int]) -> _AlignCache:
        """Full alignment from scratch — the sanctioned lexsort site.

        Live rows sorted by (partition slot, spawn sequence) form
        contiguous per-partition blocks; each catalog segment gathers
        its block by slot.  This is the splice's ground truth and the
        structural-event fallback; the lint gate pins the decision
        pass's only ``np.lexsort`` here.
        """
        registry = self._registry
        pindex = self._index.partition_index
        ledger = registry.ledger
        slot_rows = ledger.pid_slot_vector()
        live = np.flatnonzero(slot_rows >= 0)
        aligned_all = np.ones(len(counts_all), dtype=bool)
        rows_all = np.full(n_all, -1, dtype=np.intp)
        cat_slots = pindex.slots_of(view.pids)
        if len(live):
            order = live[np.lexsort(
                (ledger.seq_vector()[live], slot_rows[live])
            )]
            blocks = slot_rows[order]
            starts = np.flatnonzero(
                np.r_[True, blocks[1:] != blocks[:-1]]
            )
            lens = np.diff(np.r_[starts, len(blocks)])
            uniq = blocks[starts]
            pos = np.searchsorted(uniq, cat_slots)
            pos_c = np.minimum(pos, len(uniq) - 1)
            has = uniq[pos_c] == cat_slots
            seg_ok = has & (lens[pos_c] == counts_all)
            aligned_all &= seg_ok
            if seg_ok.any():
                base = np.where(seg_ok, starts[pos_c], 0)
                within = (
                    np.arange(n_all, dtype=np.intp)
                    - np.repeat(offsets_all[:-1], counts_all)
                )
                take = np.repeat(base, counts_all) + within
                ok_rep = np.repeat(seg_ok, counts_all)
                rows_all[ok_rep] = order[take[ok_rep]]
        slot_to_seg = np.full(len(pindex), -1, dtype=np.intp)
        if len(cat_slots):
            slot_to_seg[cat_slots] = np.arange(
                len(counts_all), dtype=np.intp
            )
        return _AlignCache(
            key=key,
            rows_all=rows_all,
            aligned_all=aligned_all,
            cat_slots=cat_slots,
            offsets_all=offsets_all.copy(),
            slot_to_seg=slot_to_seg,
            reg_pos=registry.mutation_position,
        )

    def _verify_alignment(self, spliced: _AlignCache, view,
                          offsets_all: np.ndarray, counts_all: np.ndarray,
                          n_all: int, key: Tuple[int, int, int]) -> None:
        """Cross-check a splice against the ground-truth rebuild."""
        truth = self._rebuild_alignment(
            view, offsets_all, counts_all, n_all, key
        )
        if not (
            np.array_equal(spliced.rows_all, truth.rows_all)
            and np.array_equal(spliced.aligned_all, truth.aligned_all)
            and np.array_equal(spliced.cat_slots, truth.cat_slots)
        ):
            raise KernelError(
                "incremental incidence splice diverged from the full "
                f"rebuild at key {key}"
            )

    def _settle_batched(self, load: EpochLoad, board: PriceBoard,
                        g_of_app: Optional[Dict[int, np.ndarray]] = None
                        ) -> None:
        """Slot-ordered numpy eq. 5 settlement over the flat incidence.

        Bit-identical to :meth:`_settle_scalar`: every elementwise
        operation maps one-to-one onto the scalar arithmetic, and the
        two order-sensitive accumulations — the per-partition proximity
        normaliser ``Σ g`` and the per-server query counters — keep the
        scalar visit order (``np.bincount`` accumulates its weights
        sequentially in data order, i.e. the same left fold; per-server
        counters start each epoch at exactly 0.0, so adding the folded
        total once is the same float computation).  Agent balances land
        through one vectorized ledger column write
        (:meth:`AgentRegistry.record_batch`) instead of a per-replica
        Python pass.
        """
        cloud = self._cloud
        registry = self._registry
        policy = self._policy
        floor = board.min_price() if policy.utility_floor_to_min_rent else 0.0
        flat = self._flat_state()
        self.query_totals = np.zeros(flat.n_slots, dtype=np.float64)
        self.query_totals_version = cloud.version
        n_parts = len(flat.pids)
        n_rep = len(flat.rep_slots)
        if not n_rep:
            return

        if (
            self._index is not None
            and load.index is self._index.partition_index
        ):
            # Dense path: the load's counts live in the same slot space
            # as the flat state — one gather replaces P dict lookups.
            q_part = load.counts_at(flat.pid_slots).astype(np.float64)
        else:
            queries_for = load.queries_for
            q_part = np.fromiter(
                (queries_for(pid) for pid in flat.pids), dtype=np.float64,
                count=n_parts,
            )
        counts = flat.counts
        q_rep = np.repeat(q_part, counts)
        count_rep = np.repeat(counts.astype(np.float64), counts)
        g_rep = np.ones(n_rep, dtype=np.float64)
        uniform_rep = np.ones(n_rep, dtype=bool)
        if g_of_app is not None and any(
            vec is not None for vec in g_of_app.values()
        ):
            gtot_rep = np.empty(n_rep, dtype=np.float64)
            get_g = g_of_app.get
            offsets = flat.offsets.tolist()
            for p, pid in enumerate(flat.pids):
                g_vec = get_g(pid.app_id)
                if g_vec is None:
                    continue
                lo, hi = offsets[p], offsets[p + 1]
                gs = g_vec[flat.rep_slots[lo:hi]]
                # Strict left fold, matching the scalar ``sum(gs)``.
                total = 0.0
                for value in gs.tolist():
                    total += value
                # g enters the utility term even when the share
                # computation falls back to the uniform split
                # (degenerate Σg <= 0).
                g_rep[lo:hi] = gs
                if total > 0:
                    gtot_rep[lo:hi] = total
                    uniform_rep[lo:hi] = False
        shares = np.empty(n_rep, dtype=np.float64)
        shares[uniform_rep] = q_rep[uniform_rep] / count_rep[uniform_rep]
        prox = ~uniform_rep
        if prox.any():
            shares[prox] = q_rep[prox] * g_rep[prox] / gtot_rep[prox]
        utilities = np.maximum(
            policy.revenue_per_query * shares * g_rep, floor
        )
        rents = board.price_vector(cloud.server_ids)[flat.rep_slots]

        # Per-server query counters: one sequential (left-fold) bincount
        # in replica visit order, then one vectorized column add onto
        # the server table (counters start each epoch at exactly 0.0,
        # so the elementwise ``+=`` is the same float computation as
        # the per-server ``record_queries`` fold).
        totals = np.bincount(
            flat.rep_slots, weights=shares, minlength=flat.n_slots
        )
        touched = np.flatnonzero(totals)
        if touched.size:
            cloud.record_queries_at(touched, totals[touched])
        self.query_totals = totals

        # Agent ledger: one vectorized column write for the aligned
        # rows; keyed fallback for any misaligned partition.
        if flat.all_aligned:
            registry.record_batch(flat.rep_rows, utilities, rents)
        else:
            ok = np.repeat(flat.aligned, counts)
            registry.record_batch(
                flat.rep_rows[ok], utilities[ok], rents[ok]
            )
            get_agent = registry.get
            offsets = flat.offsets
            for p in np.flatnonzero(~flat.aligned).tolist():
                pid = flat.pids[p]
                for j in range(int(offsets[p]), int(offsets[p + 1])):
                    agent = get_agent(pid, int(flat.rep_sids[j]))
                    agent.record(float(utilities[j]), float(rents[j]))

    # -- decisions (§II-C) ------------------------------------------------------

    def decide(self, board: PriceBoard, load: EpochLoad,
               rng: np.random.Generator,
               g_of_app: Optional[Dict[int, np.ndarray]] = None
               ) -> DecisionStats:
        """One full decision pass over every partition of every ring."""
        stats = DecisionStats()
        scorer = self._make_scorer(board)
        # Liveness is fixed for the whole decision pass (failures land
        # between epochs, belief flips in the membership phase); one
        # set build serves every partition.  The believed column
        # replaces the per-server attribute walk (and in the
        # overwhelmingly common all-alive case, the compress too).
        ids = self._cloud.server_ids
        alive = self._membership.believed_vector()
        if alive.all():
            self._live_ids = frozenset(ids)
        else:
            self._live_ids = frozenset(
                itertools.compress(ids, alive.tolist())
            )
        work, thresholds = self._work_list()
        order = rng.permutation(len(work))
        if self._index is None:
            for idx in order:
                partition, threshold = work[idx]
                g_vec = None
                if g_of_app is not None:
                    g_vec = g_of_app.get(partition.pid.app_id)
                self._decide_partition(
                    partition, threshold, board, scorer, load, g_vec,
                    stats,
                )
            return stats
        # Vectorized kernel: pre-triage every partition with one array
        # pass.  A partition is *skipped* only when the per-agent §II-C
        # walk would provably do nothing — its SLA holds and every
        # streaked agent fails the same suicide/migration precheck the
        # inline loop applies — which depends solely on that partition's
        # own membership and the epoch-static price board, so actions on
        # earlier-visited partitions cannot invalidate the mask.  The
        # mask is applied to the permutation as one vector filter, so
        # the Python loop below only ever touches partitions that act
        # (or whose incidence could not be verified).
        flat, visit, repairing = self._build_triage(board)
        if visit.size:
            seg_of_work = gather_int(
                flat.seg_by_slot, self._work_slots(), fill=-1
            )
            visit_work = np.where(
                seg_of_work >= 0, visit[np.maximum(seg_of_work, 0)], True
            )
            order = order[visit_work[order]]
        # Grouped repair kernel, wave 0: every SLA-short partition's
        # first eq. 3 argmax will be asked for inside its repair chain
        # below; score them all now as grouped array ops and hand the
        # scorer certified top-k shortlists, so the chains read k slots
        # instead of each paying a full cloud scan.  Pure precompute —
        # decisions, order and stats are untouched (the shortlist path
        # is provably-exact or falls back).
        self._exhausted_repair = {}
        if repairing.size:
            self._preload_repair_shortlists(
                flat, repairing, scorer, g_of_app
            )
        # Every §II-C action of the pass queues into one shared transfer
        # batch: its pending-resource mirrors are the pass's shared
        # budget/storage vectors (each intent sees real state minus all
        # earlier intents — exactly what an immediate executor would
        # see), and the single commit applies the epoch's transfers as
        # one grouped application.
        batch = self._transfers.open_batch()
        for idx in order.tolist():
            partition, threshold = work[idx]
            g_vec = None
            if g_of_app is not None:
                g_vec = g_of_app.get(partition.pid.app_id)
            self._decide_partition(
                partition, threshold, board, scorer, load, g_vec, stats,
                batch,
            )
        batch.commit()
        return stats

    def _work_list(self) -> Tuple[
        List[Tuple[Partition, float]], Dict[PartitionId, float]
    ]:
        """(partition, threshold) work items, cached per ring state.

        Ring versions only track partition-set changes, so the cache
        key also carries each ring's (immutable, replaceable) level —
        an elasticity event swapping a ring's SLA tier mid-run
        invalidates the cached thresholds instead of being ignored.
        """
        key = (
            self._rings.versions(),
            tuple(ring.level for ring in self._rings),
        )
        cached = self._work_cache
        if cached is not None and cached[0] == key:
            return cached[1], cached[2]
        work: List[Tuple[Partition, float]] = []
        thresholds: Dict[PartitionId, float] = {}
        for ring in self._rings:
            threshold = ring.level.threshold
            for partition in ring:
                work.append((partition, threshold))
                thresholds[partition.pid] = threshold
        self._work_cache = (key, work, thresholds)
        # Dense companions (vectorized kernel only): each work item's
        # partition-index slot, and the thresholds scattered over the
        # slot space (np.inf where no ring claims the slot — the same
        # default the dict lookup applied).  Slots never change once
        # assigned, so both stay valid for the cache's lifetime.
        self._work_slots_cache = None
        self._thr_by_slot_cache = None
        return work, thresholds

    def _work_slots(self) -> np.ndarray:
        """Partition-index slots of the cached work list, in order."""
        cached = self._work_slots_cache
        if cached is None:
            work = self._work_cache[1]
            cached = self._index.partition_index.slots_of(
                [partition.pid for partition, __ in work]
            )
            self._work_slots_cache = cached
        return cached

    def _thresholds_by_slot(self) -> np.ndarray:
        """Ring thresholds scattered over the partition-index slots."""
        cached = self._thr_by_slot_cache
        if cached is None:
            thresholds = self._work_cache[2]
            slots = self._work_slots()
            pindex = self._index.partition_index
            cached = np.full(len(pindex), np.inf, dtype=np.float64)
            cached[slots] = np.fromiter(
                (thr for __, thr in self._work_cache[1]),
                dtype=np.float64, count=len(thresholds),
            )
            self._thr_by_slot_cache = cached
        return cached

    def _confidence_vector(self) -> np.ndarray:
        cached = self._conf_cache
        version = self._cloud.version
        if cached is not None and cached[0] == version:
            return cached[1]
        conf = self._cloud.confidence_vector()
        self._conf_cache = (version, conf)
        return conf

    def _batched_contributions(self, flat: _FlatState) -> np.ndarray:
        """Every live replica's eq. 2 pair-term total, in one pass.

        Mirrors :meth:`AvailabilityIndex.contribution` for all replicas
        at once, batched by replication degree so each group is a dense
        (partitions × R × R) diversity gather.  Under the evaluation's
        conf ≡ 1.0 model every value is an exact small integer in
        float64, hence bit-identical to the scalar accumulation; with
        fractional confidences it shares the incremental kernel's
        documented ulp-drift caveat.
        """
        contrib = np.zeros(len(flat.rep_slots), dtype=np.float64)
        if not len(flat.rep_slots):
            return contrib
        conf = self._confidence_vector()
        matrix = self._cloud.diversity_matrix()
        counts = flat.counts
        for degree in np.unique(counts).tolist():
            if degree < 2:
                continue
            seg = np.flatnonzero(counts == degree)
            starts = flat.offsets[seg]
            idx = starts[:, None] + np.arange(degree)[None, :]
            slots = flat.rep_slots[idx]
            conf_r = conf[slots]
            pair = (
                matrix[slots[:, :, None], slots[:, None, :]]
                * conf_r[:, None, :]
            )
            contrib[idx] = conf_r * pair.sum(axis=2)
        return contrib

    def _build_triage(self, board: PriceBoard
                      ) -> Tuple[_FlatState, np.ndarray, np.ndarray]:
        """Per-partition visit mask for the §II-C pass (one array pass).

        Reproduces, vectorized, exactly the checks the inline loop runs
        for the no-action case: full-window streak flags from the agent
        ledger, the suicide feasibility test ``avail − contribution ≥
        threshold`` and the migration floor ``price · (1 − margin) >
        min_price``.  Partitions whose replicas all land in "no action"
        (and whose SLA holds) are skipped without touching their agents.
        Availability and thresholds are gathered from the dense
        partition-index stores — no per-partition Python lookups.

        Also returns the *repair wavefront*: the flat-segment indices
        of every partition whose eq. 2 availability sits below its
        ring's threshold — exactly the partitions whose visit will open
        a §II-C repair chain — so the decision pass can precompute
        their grouped eq. 3 shortlists before the chain loop runs.
        """
        flat = self._flat_state()
        if not flat.pids:
            empty = np.zeros(0, dtype=np.intp)
            return flat, np.zeros(0, dtype=bool), empty
        index = self._index
        avail = index.availability_at(flat.pid_slots)
        thr = gather_float(
            self._thresholds_by_slot(), flat.pid_slots, fill=np.inf
        )
        window = self._registry.window
        neg_run, pos_run = self._registry.ledger.streak_run_vectors()
        rows = flat.rep_rows
        valid = rows >= 0
        safe = np.where(valid, rows, 0)
        neg_rep = valid & (neg_run[safe] >= window)
        pos_rep = valid & (pos_run[safe] >= window)
        offsets = flat.offsets[:-1]
        if neg_rep.any():
            contrib = self._batched_contributions(flat)
            avail_rep = np.repeat(avail, flat.counts)
            thr_rep = np.repeat(thr, flat.counts)
            prices = board.price_vector(self._cloud.server_ids)[
                flat.rep_slots
            ]
            one_minus_margin = 1.0 - self._policy.migration_margin
            min_price = board.min_price()
            act_neg = neg_rep & (
                (avail_rep - contrib >= thr_rep)
                | (prices * one_minus_margin > min_price)
            )
            act_rep = pos_rep | act_neg
        else:
            act_rep = pos_rep
        any_act = np.logical_or.reduceat(act_rep, offsets)
        short = avail < thr
        visit = short | any_act | ~flat.aligned
        repairing = np.flatnonzero(short & np.isfinite(thr))
        return flat, visit, repairing

    def _preload_repair_shortlists(self, flat: _FlatState,
                                   repairing: np.ndarray,
                                   scorer: PlacementScorer,
                                   g_of_app: Optional[
                                       Dict[int, np.ndarray]
                                   ]) -> None:
        """Wave 0 of the grouped repair kernel (§II-C maintenance).

        Collects every repairing partition's live replica set — the
        flat incidence segments are exactly the catalog-order,
        live-filtered lists :meth:`_decide_partition` will rebuild at
        visit time — under the same ``(pid, tuple(servers))`` key the
        chain's first :meth:`PlacementScorer.best` call passes, and
        asks the scorer to build all their shortlists in one grouped
        pass.  Skipped when the scorer has no certified shortlist fast
        path (small clouds, ablation scorers), and for *storm-sized*
        waves: a wave executing more transfers than a window holds
        sweeps its anticipated-rent bumps straight past the epoch-start
        bounds, so nearly every window would come back inconclusive —
        the storms are carried by the batched exhaustion proof
        (:meth:`_repair_blocked_everywhere`) instead.  Either way the
        chains score exactly as before.
        """
        preload = getattr(scorer, "preload_shortlists", None)
        k = getattr(scorer, "shortlist_k", 0)
        if (
            preload is None
            or not scorer.best_is_pure
            or not k
            or len(repairing) > k
        ):
            return
        offsets = flat.offsets
        get_g = g_of_app.get if g_of_app is not None else None
        entries = []
        for seg in repairing.tolist():
            pid = flat.pids[seg]
            lo, hi = int(offsets[seg]), int(offsets[seg + 1])
            key = (pid, tuple(flat.rep_sids[lo:hi].tolist()))
            g = get_g(pid.app_id) if get_g is not None else None
            entries.append((key, flat.rep_slots[lo:hi], g))
        preload(entries)

    def _make_scorer(self, board: PriceBoard) -> PlacementScorer:
        """Build the epoch's placement scorer; ablations override this."""
        return PlacementScorer(
            self._cloud, board,
            rent_weight=self._policy.rent_weight,
            storage_alpha=self._rent_model.alpha,
            epochs_per_month=self._rent_model.epochs_per_month,
            alive_override=self._membership.believed_vector(),
        )

    # -- per-partition logic ------------------------------------------------------

    def _live_replicas(self, pid: PartitionId) -> List[int]:
        believed = self._membership.believed
        return [
            sid
            for sid in self._catalog.servers_of(pid)
            if believed(sid)
        ]

    def _availability_set(self, servers: Sequence[int]) -> float:
        pred = self._membership.predicate
        key: Tuple = tuple(sorted(servers))
        if pred is not None:
            # Belief flips change a set's value; the view version keys
            # the memo only while a non-physical belief is active, so
            # the oracle path keeps the engine-lifetime keys untouched.
            key = (self._membership.version, key)
        cached = self._avail_memo.get(key)
        if cached is None:
            cached = availability(self._cloud, servers, is_alive=pred)
            self._avail_memo[key] = cached
        return cached

    def _avail_of(self, pid: PartitionId, servers: Sequence[int]) -> float:
        """Eq. 2 availability of ``pid`` — incremental cache or memo."""
        if self._index is not None:
            return self._index.availability_of(pid)
        return self._availability_set(servers)

    def _avail_without(self, pid: PartitionId, servers: Sequence[int],
                       excluded: int) -> float:
        """The §II-C suicide test: availability minus one replica.

        The incremental kernel subtracts the excluded replica's pair
        terms from the cached sum (O(R)); the scalar kernel recomputes
        the remaining set's O(R²) pair sum through the memo.
        """
        if self._index is not None:
            return (
                self._index.availability_of(pid)
                - self._index.contribution(pid, excluded, servers)
            )
        return self._availability_set(
            [sid for sid in servers if sid != excluded]
        )

    def _decide_partition(self, partition: Partition, threshold: float,
                          board: PriceBoard, scorer: PlacementScorer,
                          load: EpochLoad, g_vec: Optional[np.ndarray],
                          stats: DecisionStats,
                          batch=None) -> None:
        pid = partition.pid
        # ``servers`` is threaded through the action helpers below and
        # kept an exact mirror of the catalog's (live) replica list, so
        # one build per partition replaces the per-agent rebuilds the
        # scalar engine paid for.
        if self._index is not None:
            live = self._live_ids
            servers = [
                sid
                for sid in self._catalog.replica_servers(pid)
                if sid in live
            ]
        else:
            servers = self._live_replicas(pid)
        if not servers:
            stats.lost_partitions += 1
            return
        avail = self._avail_of(pid, servers)
        if avail < threshold:
            self._repair(
                partition, threshold, avail, scorer, g_vec, stats, servers,
                batch,
            )
            return
        # Availability satisfied: each agent optimises its own cost.
        if self._index is None:
            for agent in list(self._registry.of_partition(pid)):
                if agent.negative_streak:
                    self._shed(partition, threshold, agent, board, scorer,
                               g_vec, stats, servers)
                elif agent.positive_streak:
                    self._expand(partition, agent, board, scorer, load,
                                 g_vec, stats, servers)
            return
        # Vectorized kernel: same decisions, with the overwhelmingly
        # common no-action case triaged inline.  At economic equilibrium
        # most agents carry a negative streak, cannot suicide (their
        # replica is load-bearing for the SLA) and sit too close to the
        # epoch's minimum rent to migrate — that triple check is the
        # epoch kernel's innermost loop, so it runs without the helper
        # call; :meth:`_shed` re-derives the same (memoised) quantities
        # on the rare action path.  Availability is threaded *locally*
        # through the helpers (mirroring the exact eq. 2 deltas the
        # deferred batch will apply at commit) because the shared
        # batch's catalog mutations are not visible to the index until
        # the pass ends.
        one_minus_margin = 1.0 - self._policy.migration_margin
        min_price = board.min_price()
        price = board.price
        contribution = self._index.contribution
        # O(1) streak reads: the ledger keeps the flag lists current
        # through every record/reset/spawn/retire, so indexing them is
        # the same boolean the ``negative_streak``/``positive_streak``
        # properties would compute from the window.
        neg_flags, pos_flags = self._registry.streak_flags()
        # ``of_partition`` already snapshots the agent list.
        for agent in self._registry.of_partition(pid):
            row = agent.row
            if neg_flags[row]:
                sid = agent.server_id
                if sid not in servers:
                    continue
                if avail - contribution(pid, sid, servers) < threshold:
                    # No suicide; migration needs a meaningfully
                    # cheaper host to exist at all.
                    if price(sid) * one_minus_margin <= min_price:
                        continue
                avail = self._shed(partition, threshold, agent, board,
                                   scorer, g_vec, stats, servers,
                                   avail=avail, batch=batch)
            elif pos_flags[row]:
                avail = self._expand(partition, agent, board, scorer, load,
                                     g_vec, stats, servers,
                                     avail=avail, batch=batch)

    def _repair_blocked_everywhere(self, scorer: PlacementScorer, batch,
                                   partition: Partition,
                                   servers: List[int]) -> bool:
        """Grouped §II-C repair feasibility: prove the blocked outcome.

        During a repair storm most servers' batched replication budgets
        are drained by their own *outgoing* transfers — state the
        scorer's candidate mask deliberately does not see (matching the
        sequential reference, whose scorer also tracks destinations
        only).  The chain would then score the whole cloud, pick the
        eq. 3 argmax, and have the batch refuse it.  Whenever every
        mask-feasible slot whose batched budget still fits the bytes is
        one of the partition's *own replicas* (the argmax excludes
        those — typically just the chain's source), the refusal is
        already decided: whatever slot the argmax picks has a drained
        budget, so ``add_replication`` returns ``NO_DEST_BANDWIDTH``.

        The proof needs ``feasible count > len(servers)`` (so the
        argmax provably returns *some* candidate rather than None,
        whose stats differ), plus the surviving-destination set — one
        grouped ``mask ∧ (batched budget ≥ size)`` pass over the
        batch's mirrored budget vector, cached per partition size and
        revalidated only when a reservation landed or storage was
        freed (the scorer's enable clock).  Frame-observable state is
        untouched: the skipped scan only fed a failure record, whose
        destination id no frame ever sees (the record carries the −1
        "no destination" sentinel instead).
        """
        if not getattr(scorer, "best_is_pure", False):
            return False
        feasible_mask = getattr(scorer, "feasible_mask", None)
        if feasible_mask is None:
            return False
        size = partition.size
        mask, count = feasible_mask(size, "replication", 0.0)
        if count <= len(servers):
            return False
        state = (batch.reserve_count, scorer.enable_clock)
        cached = self._exhausted_repair.get(size)
        if cached is None or cached[0] != state:
            avail = batch.budget_available_vector(
                TransferKind.REPLICATION
            )
            ok = np.flatnonzero(mask & (avail >= size))
            # Large surviving sets cannot be swallowed by any replica
            # list; remember only that the proof is out of reach.
            cached = (state, ok.tolist() if len(ok) <= 64 else None)
            self._exhausted_repair[size] = cached
        ok = cached[1]
        if ok is None or len(ok) > len(servers):
            return False
        slot = self._cloud.slot
        replica_slots = {slot(sid) for sid in servers}
        return all(s in replica_slots for s in ok)

    def _pick_source(self, servers: Sequence[int], nbytes: int,
                     batch=None) -> Optional[int]:
        """A live replica whose replication budget can ship ``nbytes``.

        With a pending :class:`~repro.store.transfer.TransferBatch`,
        availability is read through its mirror (real budget minus the
        chain's queued reservations) — the same value the server object
        would show had the queued transfers already executed.
        """
        best, headroom = None, -1
        if batch is not None:
            for sid in servers:
                avail = batch.budget_available(sid)
                if avail >= nbytes and avail > headroom:
                    best, headroom = sid, avail
            return best
        for sid in servers:
            server = self._cloud.server(sid)
            avail = server.replication_budget.available
            if avail >= nbytes and avail > headroom:
                best, headroom = sid, avail
        return best

    def _repair(self, partition: Partition, threshold: float, avail: float,
                scorer: PlacementScorer, g_vec: Optional[np.ndarray],
                stats: DecisionStats, servers: List[int],
                batch=None) -> None:
        """Replicate until the SLA is met (bounded per epoch).

        The vectorized kernel queues the repair chain into the decision
        pass's shared :class:`~repro.store.transfer.TransferBatch` —
        feasibility is checked against the batch's exact pending
        mirrors, the chain's availability is advanced with the same
        ``pair_gain`` expression the catalog listener applies at
        execution, and the whole pass's transfers then run as one
        grouped application.  Decisions, stats and post-commit state
        are identical to the one-at-a-time reference path.
        """
        pid = partition.pid
        if self._index is None:
            # Reference kernel: rebuild the live set per iteration and
            # execute transfers immediately, as pre-refactor.
            for __ in range(self._policy.repair_iterations):
                servers = self._live_replicas(pid)
                if avail >= threshold:
                    return
                source = self._pick_source(servers, partition.size)
                if source is None:
                    stats.deferred += 1
                    stats.unsatisfied_partitions += 1
                    return
                candidate = scorer.best(
                    servers, need_bytes=partition.size, g=g_vec,
                    budget="replication",
                )
                if candidate is None:
                    stats.unsatisfied_partitions += 1
                    return
                result = self._transfers.replicate(
                    partition, source, candidate.server_id
                )
                if not result.ok:
                    stats.deferred += 1
                    stats.unsatisfied_partitions += 1
                    return
                scorer.consume_budget(
                    candidate.server_id, partition.size, "replication"
                )
                self._registry.spawn(pid, candidate.server_id)
                servers.append(candidate.server_id)
                stats.repairs += 1
                avail = self._avail_of(pid, servers)
            if avail < threshold:
                stats.unsatisfied_partitions += 1
            return
        satisfied = False
        for __ in range(self._policy.repair_iterations):
            if avail >= threshold:
                satisfied = True
                break
            source = self._pick_source(servers, partition.size, batch)
            if source is None:
                stats.deferred += 1
                stats.unsatisfied_partitions += 1
                return
            if self._repair_blocked_everywhere(
                scorer, batch, partition, servers
            ):
                # Grouped exhaustion proof: the eq. 3 scan would pick a
                # candidate the batch must refuse — same stats, no scan.
                batch.defer_without_destination(partition, source)
                stats.deferred += 1
                stats.unsatisfied_partitions += 1
                return
            # Shared-argmax memo: the query is fully determined by
            # (replica *set*, size, proximity vector) plus scorer
            # state the memo's touch clocks track — the eq. 3 gain
            # sums over the set and the knockouts are the set, so the
            # key sorts it, letting partitions sharing a replica set
            # (bootstrap siblings on one seed server, whatever their
            # placement order) and repeated attempts between state
            # changes resolve to one scan.  Impure scorers (the random
            # ablation draws rng per call) must never memoize.
            memo_key = (
                (
                    tuple(sorted(servers)), partition.size,
                    id(g_vec) if g_vec is not None else 0,
                )
                if scorer.best_is_pure else None
            )
            candidate = scorer.best(
                servers, need_bytes=partition.size, g=g_vec,
                budget="replication",
                cache_key=(pid, tuple(servers)),
                memo_key=memo_key,
            )
            if candidate is None:
                stats.unsatisfied_partitions += 1
                return
            blocked = batch.add_replication(
                partition, source, candidate.server_id
            )
            if blocked is not None:
                stats.deferred += 1
                stats.unsatisfied_partitions += 1
                return
            scorer.consume_budget(
                candidate.server_id, partition.size, "replication"
            )
            self._registry.spawn(pid, candidate.server_id)
            # Same expression (and operand order) as the availability
            # index's replica_added listener applies at commit, so the
            # chain-local value stays bit-identical to the post-commit
            # cached sum the next reader sees.
            avail = avail + pair_gain(
                self._cloud, servers, candidate.server_id,
                is_alive=self._membership.predicate,
            )
            servers.append(candidate.server_id)
            stats.repairs += 1
        if not satisfied and avail < threshold:
            stats.unsatisfied_partitions += 1

    def _shed(self, partition: Partition, threshold: float,
              agent: VNodeAgent, board: PriceBoard,
              scorer: PlacementScorer, g_vec: Optional[np.ndarray],
              stats: DecisionStats, servers: List[int],
              avail: float = 0.0, batch=None) -> float:
        """Negative streak: suicide if safe, else migrate somewhere cheaper.

        Under the vectorized kernel the caller threads the partition's
        current eq. 2 availability through ``avail`` (the shared batch
        defers catalog commits, so the index would read stale sums
        mid-pass); the return value is the availability after whatever
        action was taken, advanced with the exact pair-term deltas the
        batch's commit will apply.  The scalar reference ignores both.
        """
        pid = partition.pid
        if self._index is None:
            # Reference kernel: per-agent rebuild, as pre-refactor.
            servers = self._live_replicas(pid)
            if agent.server_id not in servers:
                return avail
            remaining = self._avail_without(pid, servers, agent.server_id)
        else:
            if agent.server_id not in servers:
                return avail
            remaining = avail - self._index.contribution(
                pid, agent.server_id, servers
            )
        if remaining >= threshold:
            self._transfers.suicide(partition, agent.server_id)
            self._registry.retire(pid, agent.server_id)
            scorer.release_storage(agent.server_id, partition.size)
            servers.remove(agent.server_id)
            stats.suicides += 1
            return remaining
        # Require a *meaningfully* cheaper host.  At equilibrium, posted
        # prices differ only by small usage terms; without this margin
        # every vnode above the epoch's minimum price migrates forever,
        # which is exactly the thrashing the paper's utility floor is
        # meant to prevent.
        current_rent = board.price(agent.server_id)
        rent_cap = current_rent * (1.0 - self._policy.migration_margin)
        min_price = (
            board.min_price() if self._index is not None
            else board.scan_min_price()
        )
        if rent_cap <= min_price:
            # No server can be priced below the cap — skip the scoring
            # pass entirely (this is where cold vnodes settle).
            return avail
        # A partition larger than the migration budget can never move on
        # that budget (the paper's own parameters allow this: 256 MB
        # partitions vs 100 MB/epoch migration).  With the policy flag
        # set, such moves ride the roomier replication budget instead:
        # replicate to the target, then suicide the source copy.
        budget_kind = "migration"
        if (
            self._policy.move_large_via_replication
            and partition.size
            > self._cloud.server(agent.server_id).migration_budget.capacity
        ):
            budget_kind = "replication"
        others = [sid for sid in servers if sid != agent.server_id]
        candidate = scorer.best(
            others,
            need_bytes=partition.size,
            g=g_vec,
            max_rent=rent_cap,
            exclude=(agent.server_id,),
            budget=budget_kind,
            headroom_fraction=self._policy.storage_headroom,
            cache_key=(
                (pid, tuple(others)) if self._index is not None else None
            ),
        )
        if candidate is None:
            return avail
        if budget_kind == "migration":
            if self._index is not None:
                # Vectorized kernel: queue the move into the pass's
                # shared intent batch — the mirrors make its checks
                # (and deferred/failure stats) identical to an
                # immediate call, and the grouped commit applies it
                # before the next state read outside the pass.
                blocked = batch.add_migration(
                    partition, agent.server_id, candidate.server_id
                )
                if blocked is not None:
                    stats.deferred += 1
                    return avail
                # Local eq. 2 ledger: add dst against the pre-move set,
                # then remove src against the post-move set — the exact
                # deltas (and operand order) the catalog listener
                # applies when the queued move commits.
                self._index.invalidate_contribution(pid)
                pred = self._membership.predicate
                avail = avail + pair_gain(
                    self._cloud, servers, candidate.server_id,
                    is_alive=pred,
                )
                avail = avail - pair_gain(
                    self._cloud, others + [candidate.server_id],
                    agent.server_id, is_alive=pred,
                )
            else:
                result = self._transfers.migrate(
                    partition, agent.server_id, candidate.server_id
                )
                if not result.ok:
                    stats.deferred += 1
                    return avail
        else:
            if self._index is not None:
                blocked = batch.add_replication(
                    partition, agent.server_id, candidate.server_id
                )
                if blocked is not None:
                    stats.deferred += 1
                    return avail
                # The source copy dies now (its catalog event fires
                # immediately); the queued destination copy lands at
                # commit.  Mirror that chronology on the local sum.
                self._index.invalidate_contribution(pid)
                self._transfers.suicide(partition, agent.server_id)
                pred = self._membership.predicate
                avail = avail - pair_gain(
                    self._cloud, others, agent.server_id, is_alive=pred
                )
                avail = avail + pair_gain(
                    self._cloud, others, candidate.server_id,
                    is_alive=pred,
                )
            else:
                result = self._transfers.replicate(
                    partition, agent.server_id, candidate.server_id
                )
                if not result.ok:
                    stats.deferred += 1
                    return avail
                self._transfers.suicide(partition, agent.server_id)
        scorer.consume_budget(
            candidate.server_id, partition.size, budget_kind
        )
        scorer.release_storage(agent.server_id, partition.size)
        # Mirror the catalog's list order before ``rehome`` re-points
        # the agent at its destination: dst was appended, src removed.
        servers.remove(agent.server_id)
        servers.append(candidate.server_id)
        self._registry.rehome(pid, agent.server_id, candidate.server_id)
        stats.migrations += 1
        return avail

    def _expand(self, partition: Partition, agent: VNodeAgent,
                board: PriceBoard, scorer: PlacementScorer,
                load: EpochLoad, g_vec: Optional[np.ndarray],
                stats: DecisionStats, servers: List[int],
                avail: float = 0.0, batch=None) -> float:
        """Positive streak: replicate when popularity funds the new copy.

        Vectorized kernel: the transfer queues into the pass's shared
        batch and the partition's availability is advanced locally (see
        :meth:`_shed`); returns the post-action availability.
        """
        pid = partition.pid
        if self._index is None:
            # Reference kernel: per-agent rebuild, as pre-refactor.
            servers = self._live_replicas(pid)
        n = len(servers)
        if self._policy.max_replicas is not None and n >= self._policy.max_replicas:
            return avail
        queries = load.queries_for(pid)
        predicted_utility = (
            self._policy.revenue_per_query * queries / (n + 1)
        )
        sync_cost = self._policy.consistency.marginal_cost(queries, n)
        if (
            self._index is not None
            and scorer.best_is_pure
            and predicted_utility
            < scorer.expansion_rent_floor(partition.size) + sync_cost
        ):
            # No candidate anywhere in the cloud could be funded this
            # epoch (anticipated rents only rise from the floor), so the
            # eq. 3 scoring pass is skipped — provably the same outcome
            # as scoring and then failing the funding test below.
            return avail
        candidate = scorer.best(
            servers, need_bytes=partition.size, g=g_vec,
            budget="replication",
            headroom_fraction=self._policy.storage_headroom,
            cache_key=(
                (pid, tuple(servers)) if self._index is not None else None
            ),
        )
        if candidate is None:
            return avail
        # The candidate's rent will rise once this replica's bytes land
        # there (§II-C: "the potentially increased virtual rent of the
        # candidate server after replication").
        predicted_rent = candidate.rent + scorer.anticipated_rent_bump(
            candidate.server_id, partition.size
        )
        if predicted_utility < predicted_rent + sync_cost:
            return avail
        if self._index is not None:
            blocked = batch.add_replication(
                partition, agent.server_id, candidate.server_id
            )
            if blocked is not None:
                stats.deferred += 1
                return avail
            self._index.invalidate_contribution(pid)
            avail = avail + pair_gain(
                self._cloud, servers, candidate.server_id,
                is_alive=self._membership.predicate,
            )
        else:
            result = self._transfers.replicate(
                partition, agent.server_id, candidate.server_id
            )
            if not result.ok:
                stats.deferred += 1
                return avail
        scorer.consume_budget(
            candidate.server_id, partition.size, "replication"
        )
        spawned = self._registry.spawn(pid, candidate.server_id)
        spawned.reset_history()
        agent.reset_history()
        servers.append(candidate.server_id)
        stats.economic_replications += 1
        return avail
