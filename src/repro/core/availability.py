"""Partition availability from geographic diversity — eq. 2.

Estimating real per-server failure probabilities would need historical
and private data, so the paper approximates a partition's availability
by the confidence-weighted geographic diversity of its replica set:

    avail_i = Σ_{j} Σ_{k>j} conf_j · conf_k · diversity(s_j, s_k)

A single replica has availability 0 (no pair), two same-rack replicas
barely register (diversity 1), and replicas spread across continents
dominate — matching the §I observation that a PDU or rack failure kills
colocated machines together.
"""

from __future__ import annotations

from math import comb
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.cluster.location import (
    CROSS_COUNTRY_DIVERSITY,
    MAX_DIVERSITY,
)
from repro.cluster.topology import Cloud


class AvailabilityError(ValueError):
    """Raised for invalid availability queries."""


def availability(cloud: Cloud, server_ids: Sequence[int]) -> float:
    """Eq. 2 availability of a replica set.

    Dead or unknown servers contribute nothing: a replica on a failed
    machine is lost, so only live replicas count toward the estimate.
    """
    live = [
        sid
        for sid in server_ids
        if sid in cloud and cloud.server(sid).alive
    ]
    if len(set(live)) != len(live):
        raise AvailabilityError(f"duplicate servers in replica set: {server_ids}")
    if len(live) < 2:
        return 0.0
    total = 0.0
    for i, a in enumerate(live):
        conf_a = cloud.server(a).confidence
        row = cloud.diversity_row(a)
        for b in live[i + 1:]:
            conf_b = cloud.server(b).confidence
            total += conf_a * conf_b * row[cloud.slot(b)]
    return total


def availability_without(cloud: Cloud, server_ids: Sequence[int],
                         excluded: int) -> float:
    """Availability if ``excluded`` dropped its replica — the suicide test."""
    remaining = [sid for sid in server_ids if sid != excluded]
    if len(remaining) == len(server_ids):
        raise AvailabilityError(
            f"server {excluded} not in replica set {server_ids}"
        )
    return availability(cloud, remaining)


def pair_gain(cloud: Cloud, server_ids: Sequence[int],
              candidate: int) -> float:
    """Availability added by replicating onto ``candidate`` (eq. 2 delta)."""
    if candidate in server_ids:
        raise AvailabilityError(f"candidate {candidate} already hosts a replica")
    cand = cloud.server(candidate)
    if not cand.alive:
        return 0.0
    row = cloud.diversity_row(candidate)
    gain = 0.0
    for sid in server_ids:
        if sid in cloud and cloud.server(sid).alive:
            gain += (
                cand.confidence
                * cloud.server(sid).confidence
                * row[cloud.slot(sid)]
            )
    return gain


def max_availability(replicas: int,
                     pair_diversity: int = MAX_DIVERSITY,
                     confidence: float = 1.0) -> float:
    """Upper bound of eq. 2 for ``replicas`` copies at given dispersion."""
    if replicas < 0:
        raise AvailabilityError(f"replicas must be >= 0, got {replicas}")
    return comb(replicas, 2) * pair_diversity * confidence * confidence


def strict_threshold(replicas: int, confidence: float = 1.0) -> float:
    """Smallest threshold that *cannot* be met by ``replicas - 1`` copies.

    Any placement of ``replicas - 1`` replicas — even one per continent —
    stays strictly below this value, so an agent must hold at least
    ``replicas`` copies to satisfy it.
    """
    if replicas < 1:
        raise AvailabilityError(f"replicas must be >= 1, got {replicas}")
    return max_availability(replicas - 1, MAX_DIVERSITY, confidence) + 1.0


def dispersed_threshold(replicas: int,
                        pair_diversity: int = CROSS_COUNTRY_DIVERSITY
                        ) -> float:
    """Threshold asking for ``replicas`` copies in distinct countries.

    ``C(replicas, 2) · pair_diversity`` — reachable by ``replicas``
    cross-country copies, generally *not* by fewer unless they are far
    more dispersed.  This is the natural reading of the paper's "one
    availability level satisfied by 2, 3, 4 replicas".
    """
    if replicas < 1:
        raise AvailabilityError(f"replicas must be >= 1, got {replicas}")
    return float(comb(replicas, 2) * pair_diversity)


def paper_thresholds() -> Dict[int, float]:
    """Per-ring thresholds for the evaluation's 2/3/4-replica levels.

    Values sit between what n well-dispersed replicas achieve and what
    n−1 replicas can reach even at maximal dispersion, so the replica
    count the economy converges to is exactly the paper's:

    * ring 0 (2 replicas): 20 < 31 (one cross-country pair) — one pair
      beyond-datacenter required; a single replica scores 0.
    * ring 1 (3 replicas): 80 > 63 (two-replica maximum), < 93 (three
      cross-country replicas).
    * ring 2 (4 replicas): 250 > 189 (three-replica maximum), < 314
      (four cross-country replicas under the paper layout).
    """
    return {2: 20.0, 3: 80.0, 4: 250.0}


def diversity_histogram(cloud: Cloud, server_ids: Sequence[int]
                        ) -> Dict[int, int]:
    """Count replica pairs per diversity value — dispersion diagnostics."""
    live = [sid for sid in server_ids if sid in cloud]
    hist: Dict[int, int] = {}
    for i, a in enumerate(live):
        row = cloud.diversity_row(a)
        for b in live[i + 1:]:
            d = int(row[cloud.slot(b)])
            hist[d] = hist.get(d, 0) + 1
    return hist
