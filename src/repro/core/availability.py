"""Partition availability from geographic diversity — eq. 2.

Estimating real per-server failure probabilities would need historical
and private data, so the paper approximates a partition's availability
by the confidence-weighted geographic diversity of its replica set:

    avail_i = Σ_{j} Σ_{k>j} conf_j · conf_k · diversity(s_j, s_k)

A single replica has availability 0 (no pair), two same-rack replicas
barely register (diversity 1), and replicas spread across continents
dominate — matching the §I observation that a PDU or rack failure kills
colocated machines together.
"""

from __future__ import annotations

from math import comb
from typing import Callable, Dict, Optional, Sequence

import numpy as np

from repro.cluster.location import (
    CROSS_COUNTRY_DIVERSITY,
    MAX_DIVERSITY,
)
from repro.cluster.topology import Cloud
from repro.ring.partition import (
    PartitionIndex,
    gather_float,
    gather_int,
)


class AvailabilityError(ValueError):
    """Raised for invalid availability queries."""


#: Optional liveness override: maps a server id to whether the caller
#: *believes* it alive.  ``None`` means physical liveness (the
#: pre-existing inline path, kept byte-identical).
LivenessPredicate = Callable[[int], bool]


def availability(cloud: Cloud, server_ids: Sequence[int],
                 is_alive: Optional[LivenessPredicate] = None) -> float:
    """Eq. 2 availability of a replica set.

    Dead or unknown servers contribute nothing: a replica on a failed
    machine is lost, so only live replicas count toward the estimate.
    ``is_alive`` substitutes a *believed* liveness column for the
    physical one (the stale-membership seam); servers unknown to the
    cloud are always excluded (their diversity rows are gone).
    """
    if is_alive is None:
        live = [
            sid
            for sid in server_ids
            if sid in cloud and cloud.server(sid).alive
        ]
    else:
        live = [
            sid
            for sid in server_ids
            if sid in cloud and is_alive(sid)
        ]
    if len(set(live)) != len(live):
        raise AvailabilityError(f"duplicate servers in replica set: {server_ids}")
    if len(live) < 2:
        return 0.0
    total = 0.0
    for i, a in enumerate(live):
        conf_a = cloud.server(a).confidence
        row = cloud.diversity_row(a)
        for b in live[i + 1:]:
            conf_b = cloud.server(b).confidence
            total += conf_a * conf_b * row[cloud.slot(b)]
    return total


def availability_without(cloud: Cloud, server_ids: Sequence[int],
                         excluded: int,
                         is_alive: Optional[LivenessPredicate] = None
                         ) -> float:
    """Availability if ``excluded`` dropped its replica — the suicide test."""
    remaining = [sid for sid in server_ids if sid != excluded]
    if len(remaining) == len(server_ids):
        raise AvailabilityError(
            f"server {excluded} not in replica set {server_ids}"
        )
    return availability(cloud, remaining, is_alive=is_alive)


def pair_gain(cloud: Cloud, server_ids: Sequence[int],
              candidate: int,
              is_alive: Optional[LivenessPredicate] = None) -> float:
    """Availability added by replicating onto ``candidate`` (eq. 2 delta)."""
    if candidate in server_ids:
        raise AvailabilityError(f"candidate {candidate} already hosts a replica")
    cand = cloud.server(candidate)
    if is_alive is None:
        if not cand.alive:
            return 0.0
    elif not is_alive(candidate):
        return 0.0
    row = cloud.diversity_row(candidate)
    gain = 0.0
    if is_alive is None:
        for sid in server_ids:
            if sid in cloud and cloud.server(sid).alive:
                gain += (
                    cand.confidence
                    * cloud.server(sid).confidence
                    * row[cloud.slot(sid)]
                )
    else:
        for sid in server_ids:
            if sid in cloud and is_alive(sid):
                gain += (
                    cand.confidence
                    * cloud.server(sid).confidence
                    * row[cloud.slot(sid)]
                )
    return gain


def max_availability(replicas: int,
                     pair_diversity: int = MAX_DIVERSITY,
                     confidence: float = 1.0) -> float:
    """Upper bound of eq. 2 for ``replicas`` copies at given dispersion."""
    if replicas < 0:
        raise AvailabilityError(f"replicas must be >= 0, got {replicas}")
    return comb(replicas, 2) * pair_diversity * confidence * confidence


def strict_threshold(replicas: int, confidence: float = 1.0) -> float:
    """Smallest threshold that *cannot* be met by ``replicas - 1`` copies.

    Any placement of ``replicas - 1`` replicas — even one per continent —
    stays strictly below this value, so an agent must hold at least
    ``replicas`` copies to satisfy it.
    """
    if replicas < 1:
        raise AvailabilityError(f"replicas must be >= 1, got {replicas}")
    return max_availability(replicas - 1, MAX_DIVERSITY, confidence) + 1.0


def dispersed_threshold(replicas: int,
                        pair_diversity: int = CROSS_COUNTRY_DIVERSITY
                        ) -> float:
    """Threshold asking for ``replicas`` copies in distinct countries.

    ``C(replicas, 2) · pair_diversity`` — reachable by ``replicas``
    cross-country copies, generally *not* by fewer unless they are far
    more dispersed.  This is the natural reading of the paper's "one
    availability level satisfied by 2, 3, 4 replicas".
    """
    if replicas < 1:
        raise AvailabilityError(f"replicas must be >= 1, got {replicas}")
    return float(comb(replicas, 2) * pair_diversity)


def paper_thresholds() -> Dict[int, float]:
    """Per-ring thresholds for the evaluation's 2/3/4-replica levels.

    Values sit between what n well-dispersed replicas achieve and what
    n−1 replicas can reach even at maximal dispersion, so the replica
    count the economy converges to is exactly the paper's:

    * ring 0 (2 replicas): 20 < 31 (one cross-country pair) — one pair
      beyond-datacenter required; a single replica scores 0.
    * ring 1 (3 replicas): 80 > 63 (two-replica maximum), < 93 (three
      cross-country replicas).
    * ring 2 (4 replicas): 250 > 189 (three-replica maximum), < 314
      (four cross-country replicas under the paper layout).
    """
    return {2: 20.0, 3: 80.0, 4: 250.0}


class AvailabilityIndex:
    """Incrementally maintained eq. 2 availability of every partition.

    The scalar engine recomputes the O(R²) pair sum from scratch every
    time a partition's availability is consulted — in the decision pass
    *and* again in metrics collection.  This index instead subscribes to
    the replica catalog and folds every membership change into a cached
    per-partition pair sum:

    * replicate onto ``s``:  ``S += Σ_k conf_s · conf_k · div(s, k)``;
    * suicide / drop of ``s``:  ``S -= `` the same pair gain;
    * migration: the add and the remove, in catalog order;
    * partition split: children inherit the parent's replica set, so
      they inherit ``S`` verbatim;
    * server death: the lost partitions are recomputed from their
      surviving replicas (the dead server's diversity row is gone from
      the cloud, so its pair terms cannot be subtracted — and deaths are
      rare enough that an O(R²) rebuild per lost partition is free).

    Exactness: under the evaluation's confidence model (conf ≡ 1.0, the
    default of :func:`repro.cluster.topology.build_cloud`) every pair
    term is a small integer, so the float64 pair sum is *exact* and the
    delta-maintained value is bit-identical to the scalar double loop
    regardless of accumulation order.  With fractional confidences the
    cached value can drift from the scalar loop by rounding ulps; callers
    needing the scalar anchor there should use :func:`availability`.
    """

    def __init__(self, cloud: Cloud, catalog=None,
                 partitions: Optional[PartitionIndex] = None) -> None:
        self._cloud = cloud
        self._catalog = None
        self._partitions = (
            partitions if partitions is not None else PartitionIndex()
        )
        # Dense per-partition stores in the partition index's slot
        # space: the eq. 2 pair sum and the replica count.  Slots of
        # partitions that left the catalog hold the "absent" values
        # (0.0 / 0), which is exactly what the dict-backed reads
        # returned for them.
        self._avail = np.zeros(0, dtype=np.float64)
        self._counts = np.zeros(0, dtype=np.int64)
        # Per-(partition, server) pair-term totals for the suicide test,
        # memoised until the partition's membership changes.  Negative
        # streaks persist across epochs while membership rarely moves,
        # so the hit rate in steady state is high.
        self._contrib: Dict[object, Dict[int, float]] = {}
        # Optional believed-liveness override for every internal eq. 2
        # evaluation (the stale-membership seam).  ``None`` keeps the
        # physical paths bit-identical.  Callers that flip a belief must
        # refresh the affected partitions (:meth:`refresh_server`) —
        # the delta accounting assumes sums reflect the current column.
        self._liveness: Optional[LivenessPredicate] = None
        if catalog is not None:
            self.bind(catalog)

    # -- wiring ------------------------------------------------------------

    @property
    def partition_index(self) -> PartitionIndex:
        """The dense slot space the vector reads are addressed in."""
        return self._partitions

    def bind(self, catalog) -> None:
        """Subscribe to ``catalog`` and bootstrap from its current state."""
        self._catalog = catalog
        catalog.add_listener(self)
        self.rebuild(catalog)

    def set_liveness(self,
                     predicate: Optional[LivenessPredicate]) -> None:
        """Install (or clear) the believed-liveness override.

        The caller owns coherence: on every belief *flip* for a server,
        call :meth:`refresh_server` so the cached pair sums are
        recomputed under the new column.
        """
        self._liveness = predicate

    def refresh_partition(self, pid) -> None:
        """Recompute one partition's pair sum under the current column."""
        catalog = self._catalog
        servers = catalog.servers_of(pid) if catalog is not None else ()
        self._contrib.pop(pid, None)
        slot = self._slot(pid)
        self._counts[slot] = len(servers)
        self._avail[slot] = (
            availability(self._cloud, servers, is_alive=self._liveness)
            if servers else 0.0
        )

    def refresh_server(self, server_id: int) -> None:
        """Recompute every partition hosting ``server_id`` (belief flip)."""
        catalog = self._catalog
        if catalog is None:
            return
        for pid in catalog.partitions_on(server_id):
            self.refresh_partition(pid)

    def rebuild(self, catalog) -> None:
        """Recompute every partition's pair sum from catalog state."""
        self._contrib = {}
        slot_of = self._partitions.slot_of
        pairs = []
        for pid in catalog.partitions():
            servers = catalog.servers_of(pid)
            pairs.append(
                (slot_of(pid),
                 availability(self._cloud, servers,
                              is_alive=self._liveness),
                 len(servers))
            )
        self._avail = np.zeros(len(self._partitions), dtype=np.float64)
        self._counts = np.zeros(len(self._partitions), dtype=np.int64)
        for slot, avail, count in pairs:
            self._avail[slot] = avail
            self._counts[slot] = count

    def _slot(self, pid) -> int:
        """The partition's slot, with the vectors grown to cover it."""
        slot = self._partitions.slot_of(pid)
        if slot >= self._avail.size:
            grown = max(64, 2 * self._avail.size, slot + 1)
            avail = np.zeros(grown, dtype=np.float64)
            avail[: self._avail.size] = self._avail
            counts = np.zeros(grown, dtype=np.int64)
            counts[: self._counts.size] = self._counts
            self._avail = avail
            self._counts = counts
        return slot

    # -- queries -----------------------------------------------------------

    def availability_of(self, pid) -> float:
        """Cached eq. 2 availability (0.0 for unknown / lost partitions)."""
        slot = self._partitions.get(pid)
        if slot is None or slot >= self._avail.size:
            return 0.0
        return float(self._avail[slot])

    def availability_at(self, slots: np.ndarray) -> np.ndarray:
        """Eq. 2 availability gathered at index ``slots`` (0.0 unknown)."""
        return gather_float(self._avail, slots)

    def replica_counts_at(self, slots: np.ndarray) -> np.ndarray:
        """Catalog replica counts gathered at index ``slots`` (0 unknown).

        Mirrors ``catalog.replica_count(pid)`` — all replicas, live or
        not — maintained from the same membership events as the pair
        sums, so metrics collection reads one vector instead of P
        catalog lookups.
        """
        return gather_int(self._counts, slots)

    def invalidate_contribution(self, pid) -> None:
        """Drop the pair-term memo for one partition.

        The decision pass calls this when it *queues* a membership
        change for ``pid`` into a deferred transfer batch: the catalog
        event that would clear the memo only fires at commit, but later
        suicide prechecks within the same pass already reason over the
        post-queue replica set.
        """
        self._contrib.pop(pid, None)

    def contribution(self, pid, server_id: int,
                     servers: Sequence[int]) -> float:
        """Pair terms ``server_id`` contributes to its partition's sum.

        ``availability_of(pid) - contribution(...)`` is the §II-C
        suicide test ("does availability stay satisfied without me?")
        in O(R) instead of O(R²) — and usually O(1): the value is
        memoised per (partition, server) until the partition's
        membership changes.  ``servers`` must be the partition's current
        live replica set (the memo is keyed on membership events, not on
        the argument).
        """
        cache = self._contrib.get(pid)
        if cache is None:
            cache = {}
            self._contrib[pid] = cache
        else:
            cached = cache.get(server_id)
            if cached is not None:
                return cached
        cloud = self._cloud
        pred = self._liveness
        total = 0.0
        if server_id in cloud:
            me = cloud.server(server_id)
            me_counts = me.alive if pred is None else pred(server_id)
            if me_counts:
                row = cloud.diversity_row(server_id)
                slot = cloud.slot
                server = cloud.server
                if pred is None:
                    for sid in servers:
                        if (
                            sid != server_id
                            and sid in cloud
                            and server(sid).alive
                        ):
                            total += (
                                me.confidence
                                * server(sid).confidence
                                * row[slot(sid)]
                            )
                else:
                    for sid in servers:
                        if (
                            sid != server_id
                            and sid in cloud
                            and pred(sid)
                        ):
                            total += (
                                me.confidence
                                * server(sid).confidence
                                * row[slot(sid)]
                            )
        cache[server_id] = total
        return total

    # -- CatalogListener callbacks ------------------------------------------

    def replica_added(self, pid, server_id: int,
                      servers: Sequence[int]) -> None:
        self._contrib.pop(pid, None)
        others = [sid for sid in servers if sid != server_id]
        gain = 0.0
        if others:
            gain = pair_gain(self._cloud, others, server_id,
                             is_alive=self._liveness)
        slot = self._slot(pid)
        self._avail[slot] = self._avail[slot] + gain
        self._counts[slot] = len(servers)

    def replica_removed(self, pid, server_id: int,
                        servers: Sequence[int]) -> None:
        self._contrib.pop(pid, None)
        slot = self._slot(pid)
        self._counts[slot] = len(servers)
        if not servers:
            self._avail[slot] = 0.0
            return
        pred = self._liveness
        counts = (
            server_id in self._cloud
            and (
                self._cloud.server(server_id).alive
                if pred is None else pred(server_id)
            )
        )
        if counts:
            loss = pair_gain(self._cloud, servers, server_id,
                             is_alive=pred)
        else:
            # The server is gone from the cloud (death path without the
            # bulk drop): its pair terms cannot be derived, recompute.
            self._avail[slot] = availability(self._cloud, servers,
                                             is_alive=pred)
            return
        self._avail[slot] = self._avail[slot] - loss

    def server_dropped(self, server_id: int, lost: Sequence) -> None:
        # The dead server's diversity row left the cloud with it, so its
        # pair terms cannot be subtracted; recompute each affected
        # partition's pair sum over the survivors (exact, and deaths are
        # rare enough that the O(R²) rebuild per lost partition is free).
        catalog = self._catalog
        for pid in lost:
            self._contrib.pop(pid, None)
            servers = catalog.servers_of(pid) if catalog is not None else ()
            slot = self._slot(pid)
            self._counts[slot] = len(servers)
            if servers:
                self._avail[slot] = availability(
                    self._cloud, servers, is_alive=self._liveness
                )
            else:
                self._avail[slot] = 0.0

    def storage_changed(self, server_id: int, delta: int) -> None:
        """Byte accounting is irrelevant to eq. 2 — no-op."""

    def partition_split(self, parent, low, high,
                        servers: Sequence[int]) -> None:
        # Children inherit the parent's replica set verbatim, so both
        # the pair sum and the per-server pair terms carry over.
        contrib = self._contrib.pop(parent, None)
        if contrib is not None:
            self._contrib[low] = dict(contrib)
            self._contrib[high] = dict(contrib)
        n = len(servers)
        parent_slot = self._partitions.get(parent)
        known = parent_slot is not None and parent_slot < self._avail.size
        inherited = float(self._avail[parent_slot]) if known else 0.0
        if known:
            self._avail[parent_slot] = 0.0
            self._counts[parent_slot] = 0
        low_slot = self._slot(low)
        self._avail[low_slot] = inherited
        self._counts[low_slot] = n
        high_slot = self._slot(high)
        self._avail[high_slot] = inherited
        self._counts[high_slot] = n


def diversity_histogram(cloud: Cloud, server_ids: Sequence[int]
                        ) -> Dict[int, int]:
    """Count replica pairs per diversity value — dispersion diagnostics."""
    live = [sid for sid in server_ids if sid in cloud]
    hist: Dict[int, int] = {}
    for i, a in enumerate(live):
        row = cloud.diversity_row(a)
        for b in live[i + 1:]:
            d = int(row[cloud.slot(b)])
            hist[d] = hist.get(d, 0) + 1
    return hist
