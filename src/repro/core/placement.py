"""Replica placement: candidate scoring (eq. 3) and proximity (eq. 4).

When a virtual node must add or move a replica it scores every server

    score_j = Σ_k g_j · conf_j · diversity(s_k, s_j) − c_j         (eq. 3)

over its current replica locations s_k, where c_j is the candidate's
posted virtual rent and g_j the client-proximity preference

    g_j = Σ_l q_l / (1 + Σ_l q_l · diversity(l, s_j))              (eq. 4)

computed from the per-location query counts q_l of the node's
partition.  Diversity values are integers up to 63 while rents are
fractions of a dollar, so diversity dominates and the rent acts as the
cost tie-breaker among equally dispersed candidates — "availability is
increased as much as possible at the minimum cost" (§II-B).

Scoring is vectorised over the cloud's slot order; with N servers each
call is a handful of O(N) numpy operations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.cluster.location import Location, diversity
from repro.cluster.topology import Cloud
from repro.core.board import PriceBoard
from repro.workload.clients import ClientGeography


class PlacementError(ValueError):
    """Raised for invalid placement queries."""


def proximity_weights(cloud: Cloud, geography: ClientGeography,
                      query_counts: Optional[Dict[Location, float]] = None
                      ) -> np.ndarray:
    """Eq. 4 preference weight of every server (cloud slot order).

    ``query_counts`` are the per-client-location query counts q_l of
    one partition; when omitted, the geography's long-run shares stand
    in for them.  The uniform geography yields g ≡ 1 exactly as the
    paper assumes (§III-A); discrete geographies are normalised by the
    maximum so g stays in (0, 1] and eq. 3's diversity scale is
    preserved.
    """
    n = len(cloud)
    if n == 0:
        raise PlacementError("empty cloud")
    if geography.is_uniform:
        return np.ones(n, dtype=np.float64)
    if query_counts is not None:
        weighted = [(loc, float(q)) for loc, q in query_counts.items() if q > 0]
    else:
        weighted = geography.weighted_sites()
    if not weighted:
        return np.ones(n, dtype=np.float64)
    servers = cloud.servers()
    total_q = sum(q for __, q in weighted)
    distance = np.zeros(n, dtype=np.float64)
    for site, q in weighted:
        site_div = np.array(
            [diversity(site, s.location) for s in servers], dtype=np.float64
        )
        distance += q * site_div
    raw = total_q / (1.0 + distance)
    peak = raw.max()
    if peak <= 0:
        return np.ones(n, dtype=np.float64)
    return raw / peak


@dataclass(frozen=True)
class Candidate:
    """A scored placement candidate."""

    server_id: int
    score: float
    diversity_gain: float
    rent: float


@dataclass
class _Shortlist:
    """Top-k eq. 3 candidates of one replica set (one epoch's scorer).

    ``slots`` hold the k highest epoch-start scores in (score
    descending, slot ascending) order — plus the lowest-slot holder of
    the outside bound, so boundary ties resolve in-window; ``bound`` is
    the highest epoch-start score of every *other* slot and
    ``bound_slot`` the lowest slot achieving it.  Anticipated rents
    only rise within an epoch, so ``score0`` upper-bounds every slot's
    score for the rest of the epoch — which is what makes the k-slot
    argmax provably equal to the full scan whenever it clears the
    outside's best ``(score, slot)`` key (strictly on score, or on the
    first-index tie-break against ``bound_slot``).
    """

    slots: np.ndarray
    gain: np.ndarray
    gain_g: np.ndarray
    score0: np.ndarray
    bound: float
    bound_slot: int
    g_id: int


#: Sentinel returned by the shortlist fast path when the k-window
#: cannot prove where the argmax lies (distinct from a proven None).
_INCONCLUSIVE = object()


class PlacementScorer:
    """Eq. 3 scorer bound to one epoch's cloud state and price board.

    ``best_is_pure`` declares that :meth:`best` has no side effects
    (no RNG draws, no state mutation), which is what entitles the
    decision engine to *skip* provably-fruitless calls (the
    :meth:`expansion_rent_floor` fast path).  Subclasses whose ``best``
    consumes randomness — the random-placement ablation — must set it
    to False or their draw stream would depend on the skip.

    Instantiate once per epoch (the simulator does); individual calls
    then reuse the slot-ordered rent/confidence/storage vectors.

    Prices are *anticipated*: every transfer routed through
    :meth:`consume_budget` bumps the destination's cached rent by the
    eq. 1 storage term its bytes will add (the paper's "potentially
    increased virtual rent of the candidate server").  Without this,
    every agent in an epoch sees the same static board and herds onto
    the one argmax server until it is full.
    """

    best_is_pure: bool = True

    def __init__(self, cloud: Cloud, board: PriceBoard,
                 rent_weight: float = 1.0,
                 storage_alpha: float = 1.0,
                 epochs_per_month: int = 720,
                 shortlist_k: Optional[int] = None,
                 alive_override: Optional[np.ndarray] = None) -> None:
        if rent_weight < 0:
            raise PlacementError(
                f"rent_weight must be >= 0, got {rent_weight}"
            )
        if storage_alpha < 0:
            raise PlacementError(
                f"storage_alpha must be >= 0, got {storage_alpha}"
            )
        if epochs_per_month <= 0:
            raise PlacementError(
                f"epochs_per_month must be > 0, got {epochs_per_month}"
            )
        self._cloud = cloud
        self._ids: List[int] = cloud.server_ids
        self._slot_of: Dict[int, int] = {
            sid: i for i, sid in enumerate(self._ids)
        }
        self._rents = board.price_vector(self._ids)
        self._conf = cloud.confidence_vector()
        self._storage = cloud.storage_available_vector()
        # Static per-server terms come from the cloud's version-cached
        # vectors; the division is one array op, bit-identical per
        # entry to the scalar ``monthly_rent / epochs_per_month``.
        self._capacity = cloud.capacity_vector()
        self._usage_price = (
            cloud.monthly_rent_vector() / float(epochs_per_month)
        )
        # ``alive_override`` is the faulty-network *believed* column;
        # candidates the board believes dead score as infeasible even
        # while physically up (and ghosts stay targetable until the
        # gossip layer detects them — the transfer engine then refuses
        # the copy with a typed network outcome).
        self._alive = (
            alive_override if alive_override is not None
            else cloud.alive_vector()
        )
        self._rent_weight = rent_weight
        self._storage_alpha = storage_alpha
        self._headroom: Dict[str, np.ndarray] = {}
        self._gain_cache: Dict[object, np.ndarray] = {}
        # Placement-class canonicalisation: eq. 3's gain depends only
        # on the *locations* of the replica set (diversity is a pure
        # location function), so every per-set cache below is keyed by
        # the sorted location tuple — the set's placement class — via
        # :meth:`_class_key`.  Partitions sharing a replica set (or,
        # degenerately, sets whose servers share locations) then share
        # one gain row sum and one top-k shortlist instead of building
        # identical copies per ``cache_key``.  ``_class_div`` holds the
        # pre-confidence diversity sums: exact small-integer float64
        # vectors, which is what makes both the class sharing and the
        # prefix extension in :meth:`_class_div_sum` bit-identical to
        # a fresh per-set scan.
        self._class_keys: Dict[object, object] = {}
        self._class_div: Dict[object, np.ndarray] = {}
        self._locs: Dict[int, Location] = {}
        self.class_gain_reuses = 0
        self.class_div_extends = 0
        # Epoch-start rents: anticipated rents only *rise* within an
        # epoch (consume_budget adds eq. 1 bumps), so minima over this
        # snapshot are valid lower bounds for the whole epoch.
        self._rents0 = self._rents.copy()
        self._floor_cache: Dict[int, float] = {}
        # Default k: a 64-slot window on big clouds, off entirely when
        # the cloud is small enough that the full scan is already a
        # handful of tiny array ops and the window bookkeeping would be
        # pure overhead.  An explicit ``shortlist_k`` always wins
        # (tests pin both behaviors; 0 disables).
        if shortlist_k is None:
            n = len(self._ids)
            shortlist_k = 64 if n > 4 * 64 else 0
        # Cached feasibility masks: the alive/storage/budget mask of
        # :meth:`best` depends only on (need_bytes, budget kind,
        # headroom) and the scorer's mutable storage/budget state.  It
        # is cached per key; when that state moves (consume_budget /
        # release_storage) only the touched server's slot is re-derived
        # in each cached mask — a transfer invalidates one slot, not
        # the cloud.  The pre-PR O(S) mask rebuild per ``best`` call
        # collapses to a dict hit for the whole epoch.
        self._mask_cache: Dict[
            Tuple[int, Optional[str], float], np.ndarray
        ] = {}
        # Maintained popcount per cached mask (updated with the same
        # single-slot refreshes), so "how many feasible candidates are
        # left" is an O(1) read for the repair wavefront's proofs.
        self._mask_counts: Dict[
            Tuple[int, Optional[str], float], int
        ] = {}
        # Top-k candidate shortlists per replica set (``cache_key``):
        # eq. 3's argmax usually lands in the few dozen best-scored
        # slots, so repeated ``best`` calls for the same set (expanding
        # agents of a hot partition, repair waves re-scoring after
        # earlier transfers) scan ~k slots instead of the whole cloud —
        # with a full-scan fallback whenever the k-window cannot
        # *prove* it contains the argmax.  0 disables the fast path.
        self._shortlist_k = shortlist_k
        self._shortlists: Dict[object, _Shortlist] = {}
        # Keys seen exactly once: a shortlist is only built on a key's
        # *second* call — repair chains mint a fresh key per iteration
        # (the replica set grew), and paying an O(S) argpartition for a
        # key that is never reused would slow the very storms the
        # shortlist exists for.
        self._shortlist_seen: set = set()
        # Shared-argmax memo (the grouped repair kernel's core): two
        # ``best`` calls with the same feasibility key, replica set and
        # proximity vector are the *same query* unless the scorer's
        # mutable state moved in a way that can change the answer.
        # Anticipated rents only rise and masks only shrink — except
        # through :meth:`release_storage` — so a memoized answer stays
        # exact while (a) no storage was released since it was stored
        # and (b) the winning slot itself was not touched: every other
        # slot's score can only have dropped, and the first-index
        # tie-break already preferred the winner (see :meth:`best`).
        # ``_touch`` records each slot's last mutation tick;
        # ``_enable_clock`` the last mask-enabling event.
        self._touch = np.full(len(self._ids), -1, dtype=np.int64)
        self._touch_clock = 0
        self._enable_clock = -1
        self._best_memo: Dict[object,
                              Tuple[int, int, Optional[Candidate]]] = {}

    @property
    def server_ids(self) -> List[int]:
        return list(self._ids)

    def _class_key(self, replica_servers: Sequence[int],
                   cache_key: object) -> object:
        """The replica set's placement-class key, memoised per cache_key.

        Diversity is a pure function of server *locations*, so every
        set with the same sorted location tuple scores identically —
        the class key ``("cls", locations)`` lets all of them share one
        cache entry.  A set containing a server the scorer's cloud no
        longer knows (raced removal) cannot be classed by location and
        falls back to the private ``("raw", cache_key)`` key, which
        degrades to exactly the old per-key caching.  The memo is
        sound because every ``cache_key`` the engine mints embeds the
        replica tuple itself.
        """
        key = self._class_keys.get(cache_key)
        if key is None:
            if all(sid in self._cloud for sid in replica_servers):
                key = ("cls", tuple(sorted(
                    self._location(sid) for sid in replica_servers
                )))
            else:
                key = ("raw", cache_key)
            self._class_keys[cache_key] = key
        return key

    def _location(self, sid: int) -> Location:
        """Memoised server-location lookup (stable per epoch scorer)."""
        loc = self._locs.get(sid)
        if loc is None:
            loc = self._cloud.server(sid).location
            self._locs[sid] = loc
        return loc

    def _class_div_sum(self, replica_servers: Sequence[int],
                       locs: object) -> np.ndarray:
        """Pre-confidence diversity row sum of one placement class.

        Diversity values are integers at most 63, so the summed float64
        vectors are exact and *order-independent* — which licenses two
        reuses a post-confidence cache could never make bit-safe:
        classes are shared across whatever order each caller lists the
        set in, and a §II-C repair chain that appended its accepted
        candidate extends the previous iteration's class with one
        ``diversity_row`` addition instead of re-summing the whole set.
        (The confidence multiply stays outside: ``(a + b) · c`` and
        ``a·c + b·c`` differ in the last ulp for fractional ``c``.)
        """
        cached = self._class_div.get(locs)
        if cached is not None:
            return cached
        cloud = self._cloud
        div_sum = None
        if len(replica_servers) > 1:
            prev_locs = tuple(sorted(
                self._location(sid)
                for sid in replica_servers[:-1]
            ))
            prev = self._class_div.get(prev_locs)
            if prev is not None:
                div_sum = prev + cloud.diversity_row(
                    replica_servers[-1]
                )
                self.class_div_extends += 1
        if div_sum is None:
            div_sum = np.zeros(len(self._ids), dtype=np.float64)
            for sid in replica_servers:
                div_sum += cloud.diversity_row(sid)
        self._class_div[locs] = div_sum
        return div_sum

    def _diversity_gain(self, replica_servers: Sequence[int],
                        cache_key: Optional[object] = None) -> np.ndarray:
        """Σ_k conf · diversity(s_k, ·) over the replica set, per slot.

        The expensive half of eq. 3 — O(R) full-cloud row additions —
        depends only on the replica set, not on the scorer's mutable
        rent state, so callers scoring the same set repeatedly within
        one epoch (every expanding agent of a hot partition, each
        iteration of a §II-C repair chain) can pass a ``cache_key``
        identifying the set and pay for the rows once.  Keys are
        canonicalised to placement classes (:meth:`_class_key`), so
        "the same set" means the same location multiset — however many
        partitions share it.
        """
        if cache_key is not None:
            ckey = self._class_key(replica_servers, cache_key)
            cached = self._gain_cache.get(ckey)
            if cached is not None:
                self.class_gain_reuses += 1
                return cached
            if ckey[0] == "cls":
                div_sum = self._class_div_sum(replica_servers, ckey[1])
                gain = div_sum * self._conf
                self._gain_cache[ckey] = gain
                return gain
        n = len(self._ids)
        div_sum = np.zeros(n, dtype=np.float64)
        for sid in replica_servers:
            if sid in self._cloud:
                div_sum += self._cloud.diversity_row(sid)
        gain = div_sum * self._conf
        if cache_key is not None:
            self._gain_cache[ckey] = gain
        return gain

    def scores(self, replica_servers: Sequence[int],
               g: Optional[np.ndarray] = None,
               cache_key: Optional[object] = None) -> np.ndarray:
        """Raw eq. 3 score of every server (no feasibility masking)."""
        n = len(self._ids)
        gain = self._diversity_gain(replica_servers, cache_key)
        if g is not None:
            if len(g) != n:
                raise PlacementError(
                    f"g has {len(g)} entries for {n} servers"
                )
            gain = gain * g
        return gain - self._rent_weight * self._rents

    def best(self, replica_servers: Sequence[int], *,
             need_bytes: int = 0,
             g: Optional[np.ndarray] = None,
             max_rent: Optional[float] = None,
             exclude: Sequence[int] = (),
             budget: Optional[str] = None,
             headroom_fraction: float = 0.0,
             cache_key: Optional[object] = None,
             memo_key: Optional[object] = None) -> Optional[Candidate]:
        """Feasible argmax of eq. 3, or None when no server qualifies.

        ``memo_key`` opts the call into the shared-argmax memo: the
        caller asserts the key captures *every* query input except the
        scorer's mutable state (replica set, need, budget class,
        headroom, proximity vector — the §II-C repair chains key on
        ``(servers, size, g)``, which two partitions sharing a replica
        set legitimately share).  A memoized candidate is returned only
        while provably still the argmax: no storage release since it
        was stored (masks could only have shrunk, so a ``None`` stays
        ``None``), and the winning slot untouched (its score is
        unchanged while every other score can only have dropped; the
        first-index tie-break already preferred it, and lower slots
        were strictly below it when memoized).  Anything else rescans.

        Excluded are: current replica holders (a server holds at most
        one copy of a partition), dead servers, servers without
        ``need_bytes`` free storage, servers in ``exclude``, and — when
        ``max_rent`` is given (migration hunts for *cheaper* hosts) —
        servers at or above that rent.  With ``budget`` set to
        ``"replication"`` or ``"migration"``, destinations whose
        remaining per-epoch bandwidth budget of that class cannot absorb
        ``need_bytes`` are masked as well — without this, every agent in
        an epoch converges on the same argmax server and all but the
        first two transfers bounce off its budget.

        ``headroom_fraction`` reserves that share of each candidate's
        raw capacity on top of ``need_bytes``: cost-motivated moves
        (migration, economic replication) should not pack a destination
        to the brim, or the next insert there fails immediately.  SLA
        repairs pass 0 — protecting data beats placement hygiene.
        """
        if not 0.0 <= headroom_fraction < 1.0:
            raise PlacementError(
                f"headroom_fraction must be in [0, 1), got "
                f"{headroom_fraction}"
            )
        if memo_key is not None:
            hit = self._best_memo.get(memo_key)
            if hit is not None:
                slot, tick, candidate = hit
                if self._enable_clock <= tick and (
                    slot < 0 or self._touch[slot] <= tick
                ):
                    return candidate
        mask = self._feasible_mask(need_bytes, budget, headroom_fraction)
        if cache_key is not None and self._shortlist_k > 0:
            skey = self._class_key(replica_servers, cache_key)
            if (
                skey in self._shortlists
                or skey in self._shortlist_seen
            ):
                found = self._best_from_shortlist(
                    replica_servers, mask, g, max_rent, exclude,
                    cache_key, skey,
                )
                if found is not _INCONCLUSIVE:
                    return self._memoize(memo_key, found)
            else:
                self._shortlist_seen.add(skey)
        if max_rent is not None:
            # The rent cap varies per caller (migration hunts under the
            # agent's own rent), so it stays out of the cached mask.
            mask = mask & (self._rents < max_rent)
        if not mask.any():
            # Budget/storage-exhausted epochs hit this constantly; skip
            # the eq. 3 gain/score work when no server qualifies.
            return self._memoize(memo_key, None)
        gain = self._diversity_gain(replica_servers, cache_key)
        if g is not None:
            if len(g) != len(self._ids):
                raise PlacementError(
                    f"g has {len(g)} entries for {len(self._ids)} servers"
                )
            scores = gain * g - self._rent_weight * self._rents
        else:
            scores = gain - self._rent_weight * self._rents
        scores = np.where(mask, scores, -np.inf)
        # Knock out current holders / exclusions by slot lookup — the
        # blocked set is a handful of servers, the cloud is hundreds
        # (and the cached mask must stay unmutated).
        slot_of = self._slot_of
        for sid in replica_servers:
            slot = slot_of.get(sid)
            if slot is not None:
                scores[slot] = -np.inf
        for sid in exclude:
            slot = slot_of.get(sid)
            if slot is not None:
                scores[slot] = -np.inf
        idx = int(np.argmax(scores))
        if not np.isfinite(scores[idx]):
            return self._memoize(memo_key, None)
        return self._memoize(memo_key, Candidate(
            server_id=self._ids[idx],
            score=float(scores[idx]),
            diversity_gain=float(gain[idx]),
            rent=float(self._rents[idx]),
        ))

    def _memoize(self, memo_key: Optional[object],
                 candidate: Optional[Candidate]) -> Optional[Candidate]:
        """Record a ``best`` answer under the shared-argmax memo."""
        if memo_key is not None:
            slot = (
                self._slot_of[candidate.server_id]
                if candidate is not None else -1
            )
            self._best_memo[memo_key] = (
                slot, self._touch_clock, candidate
            )
        return candidate

    @property
    def shortlist_k(self) -> int:
        """Size of the top-k candidate windows (0 = fast path off)."""
        return self._shortlist_k

    @property
    def touch_clock(self) -> int:
        """Tick of the last mutable-state change (monotone)."""
        return self._touch_clock

    @property
    def enable_clock(self) -> int:
        """Tick of the last mask-*enabling* change (storage release)."""
        return self._enable_clock

    def preload_shortlists(self, entries: Sequence) -> int:
        """Grouped wave-0 shortlist build for many replica sets at once.

        ``entries`` are ``(cache_key, replica_slots, g)`` triples — the
        repair wavefront: every SLA-short partition's live replica set
        (as cloud slot indices), keyed exactly as the §II-C repair
        chain's first :meth:`best` call will ask for it.  Instead of
        each chain paying a full O(S) eq. 3 scoring pass, the sets are
        grouped by replication degree (and proximity vector) and scored
        as chunked ``(partitions × servers)`` array expressions; each
        row is then reduced to the same top-k window + outside bound
        :meth:`_shortlist_for` builds one at a time, so the chains'
        argmaxes resolve over k slots with the usual strict-bound
        certificate (full-scan fallback on any tie with the bound).

        Every float operation matches :meth:`_shortlist_for`
        elementwise (diversity sums are exact small integers in
        float64, so grouping cannot change a single bit), which is what
        keeps the wavefront byte-identical to per-chain scoring.
        Returns the number of shortlists built; 0 when the shortlist
        fast path is disabled.
        """
        k = self._shortlist_k
        n = len(self._ids)
        if not k or not n:
            return 0
        groups: Dict[Tuple[int, int], List] = {}
        batch_seen: set = set()
        ids = self._ids
        for key, slots, g in entries:
            # Canonicalise to the placement class before grouping:
            # repairing partitions that share a replica set (bootstrap
            # siblings, co-located hot partitions) collapse to one row
            # of the grouped scoring pass and one stored window.
            skey = self._class_key(
                [ids[int(s)] for s in slots], key
            )
            if skey in self._shortlists or skey in batch_seen:
                continue
            batch_seen.add(skey)
            gid = id(g) if g is not None else 0
            groups.setdefault((len(slots), gid), []).append(
                (skey, slots, g)
            )
        built = 0
        matrix = self._cloud.diversity_matrix()
        for (degree, __), items in groups.items():
            if not degree:
                continue
            g = items[0][2]
            # Bound the per-chunk temporaries: the largest is the
            # (rows × degree × servers) gather feeding the gain sum.
            max_chunk = max(1, (32 << 20) // (degree * n * 8))
            for start in range(0, len(items), max_chunk):
                chunk = items[start:start + max_chunk]
                slot_mat = np.stack(
                    [slots for __k, slots, __g in chunk]
                )
                # Row gathers summed in float64: exact integers, so
                # the accumulation order cannot matter.
                div_sum = matrix[slot_mat].sum(axis=1, dtype=np.float64)
                gain = div_sum * self._conf[None, :]
                gain_g = gain * g[None, :] if g is not None else gain
                score0 = gain_g - self._rent_weight * self._rents0[None, :]
                self._store_shortlists(chunk, gain, gain_g, score0, g)
                built += len(chunk)
        return built

    def _store_shortlists(self, chunk: Sequence, gain: np.ndarray,
                          gain_g: np.ndarray, score0: np.ndarray,
                          g: Optional[np.ndarray]) -> None:
        """Reduce grouped score rows to per-key :class:`_Shortlist`s.

        Same ordering contract as :meth:`_shortlist_for`: each window
        holds its k best epoch-start scores in (score descending, slot
        ascending) order, with ``bound`` the best score outside it.
        """
        rows, n = score0.shape
        k = self._shortlist_k
        g_id = id(g) if g is not None else 0
        if n > k:
            part = np.argpartition(-score0, k, axis=1)
            top = part[:, :k]
            rest_scores = np.take_along_axis(score0, part[:, k:], axis=1)
            bounds = rest_scores.max(axis=1)
            # Each row's lowest slot scoring exactly its bound (argmax
            # of the equality mask = first True), kept in-window so
            # boundary ties certify (see _shortlist_for).
            bound_slots = np.argmax(score0 == bounds[:, None], axis=1)
            top = np.concatenate([top, bound_slots[:, None]], axis=1)
        else:
            top = np.tile(np.arange(n), (rows, 1))
            bounds = np.full(rows, -np.inf)
            bound_slots = np.full(rows, n)
        top_scores = np.take_along_axis(score0, top, axis=1)
        width = top.shape[1]
        # One flat lexsort orders every row's window at once: keys are
        # (row, -score0, slot), so within a row the order is exactly
        # _shortlist_for's lexsort((top, -score0[top])).
        row_idx = np.repeat(np.arange(rows), width)
        order = np.lexsort((top.ravel(), -top_scores.ravel(), row_idx))
        ordered = top.ravel()[order].reshape(rows, width)
        take = np.take_along_axis
        gain_k = take(gain, ordered, axis=1)
        gain_g_k = take(gain_g, ordered, axis=1)
        score0_k = take(score0, ordered, axis=1)
        for r, (key, __slots, __g) in enumerate(chunk):
            self._shortlists[key] = _Shortlist(
                slots=ordered[r],
                gain=gain_k[r],
                gain_g=gain_g_k[r],
                score0=score0_k[r],
                bound=float(bounds[r]),
                bound_slot=int(bound_slots[r]),
                g_id=g_id,
            )

    def _shortlist_for(self, replica_servers: Sequence[int],
                       g: Optional[np.ndarray],
                       cache_key: object,
                       skey: object) -> _Shortlist:
        """The placement class's top-k window, built on first use.

        One O(S) scoring pass (sharing the cached eq. 3 gain) plus an
        ``argpartition`` — amortised over every later ``best`` call for
        the same *class* (``skey``), which then reads k slots instead
        of S.  Class sharing is bit-safe because the window's contents
        are pure functions of the class gain, ``g`` and the epoch-start
        rents; the proof logic in :meth:`_best_from_shortlist` then
        certifies each answer against the full scan regardless of
        which set built the window.
        """
        g_id = id(g) if g is not None else 0
        sl = self._shortlists.get(skey)
        if sl is not None and sl.g_id == g_id:
            return sl
        gain = self._diversity_gain(replica_servers, cache_key)
        gain_g = gain * g if g is not None else gain
        score0 = gain_g - self._rent_weight * self._rents0
        n = len(score0)
        k = self._shortlist_k
        if n > k:
            part = np.argpartition(-score0, k)
            top = part[:k]
            bound = float(score0[part[k:]].max())
            # The lowest slot scoring exactly ``bound`` (ties are the
            # norm on uniform clouds): keeping it in the window lets a
            # boundary tie resolve by the first-index rule instead of
            # forcing the full scan.
            bound_slot = int(np.argmax(score0 == bound))
            top = np.append(top, bound_slot)
        else:
            top = np.arange(n)
            bound = -np.inf
            bound_slot = n
        # (score0 descending, slot ascending) — lexsort's last key is
        # primary; the slot tie-break mirrors np.argmax's first-index
        # rule on the slot-ordered full scan.
        order = top[np.lexsort((top, -score0[top]))]
        sl = _Shortlist(
            slots=order,
            gain=gain[order],
            gain_g=gain_g[order],
            score0=score0[order],
            bound=bound,
            bound_slot=bound_slot,
            g_id=g_id,
        )
        self._shortlists[skey] = sl
        return sl

    def _best_from_shortlist(self, replica_servers: Sequence[int],
                             mask: np.ndarray,
                             g: Optional[np.ndarray],
                             max_rent: Optional[float],
                             exclude: Sequence[int],
                             cache_key: object,
                             skey: object):
        """Eq. 3 argmax over the top-k window, or the inconclusive
        sentinel when the window cannot *prove* it holds the argmax.

        Soundness: anticipated rents only rise within an epoch, so
        every slot outside the window holds a ``(score, slot)`` argmax
        key of at most ``(bound, bound_slot)`` — its score is capped by
        its epoch-start value, and every outside slot scoring exactly
        ``bound`` carries a slot id above ``bound_slot`` (the lowest
        such slot is kept *inside* the window).  A feasible window
        winner strictly above ``bound``, or tying it from a slot no
        higher than ``bound_slot``, therefore beats every outside slot
        under np.argmax's first-index rule; ties inside the window
        already resolve to the lowest slot id.  Any other boundary tie
        falls back to the full scan.  ``None`` is never concluded here:
        an empty feasible window says nothing about the other S − k
        slots.
        """
        sl = self._shortlist_for(replica_servers, g, cache_key, skey)
        slots = sl.slots
        rents_k = self._rents[slots]
        scores_k = sl.gain_g - self._rent_weight * rents_k
        ok = mask[slots]
        if max_rent is not None:
            ok = ok & (rents_k < max_rent)
        slot_of = self._slot_of
        for sid in (*replica_servers, *exclude):
            slot = slot_of.get(sid)
            if slot is not None:
                ok = ok & (slots != slot)
        if not ok.any():
            return _INCONCLUSIVE
        masked = np.where(ok, scores_k, -np.inf)
        best = float(masked.max())
        if best < sl.bound:
            return _INCONCLUSIVE
        winners = np.flatnonzero(masked == best)
        pos = int(winners[np.argmin(slots[winners])])
        if best == sl.bound and int(slots[pos]) > sl.bound_slot:
            return _INCONCLUSIVE
        return Candidate(
            server_id=self._ids[int(slots[pos])],
            score=best,
            diversity_gain=float(sl.gain[pos]),
            rent=float(rents_k[pos]),
        )

    def _feasible_mask(self, need_bytes: int, budget: Optional[str],
                       headroom_fraction: float) -> np.ndarray:
        """Alive ∧ storage ∧ budget feasibility, cached per key.

        Treat the returned array as read-only: it is shared across
        calls, with single-slot refreshes applied in place as storage
        or budget state moves (:meth:`_refresh_masks`).
        """
        key = (need_bytes, budget, headroom_fraction)
        cached = self._mask_cache.get(key)
        if cached is not None:
            return cached
        mask = self._alive.copy()
        if headroom_fraction > 0.0:
            reserve = (self._capacity * headroom_fraction).astype(np.int64)
            mask &= self._storage >= need_bytes + reserve
        else:
            mask &= self._storage >= need_bytes
        if budget is not None:
            mask &= self._budget_headroom(budget) >= need_bytes
        self._mask_cache[key] = mask
        self._mask_counts[key] = int(mask.sum())
        return mask

    def feasible_mask(self, need_bytes: int, budget: Optional[str] = None,
                      headroom_fraction: float = 0.0
                      ) -> Tuple[np.ndarray, int]:
        """The cached feasibility mask and its live popcount.

        The mask is exactly what :meth:`best` applies before scoring
        (treat as read-only); the count is maintained through the same
        single-slot refreshes, so callers can reason about candidate
        existence without an O(S) scan.
        """
        mask = self._feasible_mask(need_bytes, budget, headroom_fraction)
        return mask, self._mask_counts[need_bytes, budget,
                                       headroom_fraction]

    def _budget_headroom(self, kind: str) -> np.ndarray:
        """Remaining per-epoch bandwidth of every server, slot order.

        Built once per scorer (i.e. per epoch) and then maintained
        incrementally via :meth:`consume_budget` as transfers complete,
        which is what spreads simultaneous placements over distinct
        destinations without rescanning the cloud on every call.
        """
        cached = self._headroom.get(kind)
        if cached is not None:
            return cached
        if kind not in ("replication", "migration"):
            raise PlacementError(f"unknown budget kind {kind!r}")
        # One column-pair subtraction off the cloud's ServerTable —
        # values identical to the per-server budget walk.
        arr = self._cloud.budget_available_vector(kind)
        self._headroom[kind] = arr
        return arr

    def expansion_rent_floor(self, nbytes: int) -> float:
        """Epoch lower bound of ``candidate.rent + anticipated bump``.

        For *any* server ``s`` at *any* point in this epoch,
        ``rent_s + Δc_s(nbytes) >= min_s(rent0_s + Δc_s(nbytes))``
        because anticipated rents start at ``rent0`` and only increase.
        An economic replication whose predicted utility cannot clear
        this floor plus its consistency cost would be rejected for every
        candidate, so the caller may skip scoring entirely — same
        decision, none of the eq. 3 work.  Cached per partition size
        (one vector min per distinct size per epoch).
        """
        cached = self._floor_cache.get(nbytes)
        if cached is None:
            # Same operation order as anticipated_rent_bump, so every
            # vector component is bit-identical to the scalar bump —
            # the bound must never exceed the true value by an ulp.
            bumps = (
                self._usage_price * self._storage_alpha * nbytes
                / self._capacity
            )
            cached = float(np.min(self._rents0 + bumps))
            self._floor_cache[nbytes] = cached
        return cached

    def anticipated_rent_bump(self, server_id: int, nbytes: int) -> float:
        """Eq. 1 rent increase ``nbytes`` would cause at a destination.

        ``Δc = up · α · nbytes / capacity`` — the storage term of the
        price function evaluated for the incoming replica's bytes.
        """
        idx = self._slot(server_id)
        return float(
            self._usage_price[idx]
            * self._storage_alpha
            * nbytes
            / self._capacity[idx]
        )

    def consume_budget(self, server_id: int, nbytes: int, kind: str) -> None:
        """Mirror a completed transfer into the cached headroom/storage.

        The caller (decision engine) invokes this for the destination of
        every successful transfer so later placements within the same
        epoch see the reduced budget and storage — and a correspondingly
        *higher* anticipated rent, which is what disperses simultaneous
        placements instead of herding them onto one argmax server.
        """
        idx = self._slot(server_id)
        headroom = self._headroom.get(kind)
        if headroom is not None:
            headroom[idx] = max(headroom[idx] - nbytes, 0)
        self._storage[idx] = max(self._storage[idx] - nbytes, 0)
        self._rents[idx] += self.anticipated_rent_bump(server_id, nbytes)
        self._refresh_masks(idx)
        self._touch_clock += 1
        self._touch[idx] = self._touch_clock

    def release_storage(self, server_id: int, nbytes: int) -> None:
        """Mirror freed bytes (migration source, suicide) into the cache."""
        idx = self._slot(server_id)
        self._storage[idx] += nbytes
        self._refresh_masks(idx)
        # Freed storage can *re-enable* masked candidates — the one
        # event that breaks the only-gets-worse monotonicity every
        # memoized answer (and exhaustion proof) relies on.
        self._touch_clock += 1
        self._touch[idx] = self._touch_clock
        self._enable_clock = self._touch_clock

    def _refresh_masks(self, idx: int) -> None:
        """Re-derive slot ``idx`` of every cached feasibility mask.

        A transfer only moves one destination's (or source's) storage
        and budget state, so the cached masks stay valid everywhere
        else; each entry is recomputed with exactly the expressions
        :meth:`_feasible_mask` evaluated — O(cached masks) per transfer
        instead of an O(S) rebuild per later ``best`` call.
        """
        storage = int(self._storage[idx])
        alive = bool(self._alive[idx])
        counts = self._mask_counts
        for (need, budget, headroom_fraction), mask in (
            self._mask_cache.items()
        ):
            ok = alive
            if ok:
                if headroom_fraction > 0.0:
                    reserve = np.int64(
                        self._capacity[idx] * headroom_fraction
                    )
                    ok = storage >= need + reserve
                else:
                    ok = storage >= need
            if ok and budget is not None:
                # The mask's construction built this headroom vector.
                ok = bool(self._headroom[budget][idx] >= need)
            was = bool(mask[idx])
            if ok != was:
                counts[need, budget, headroom_fraction] += 1 if ok else -1
            mask[idx] = ok

    def _slot(self, server_id: int) -> int:
        try:
            return self._slot_of[server_id]
        except KeyError:
            raise PlacementError(f"unknown server {server_id}") from None

    def rent_of(self, server_id: int) -> float:
        return float(self._rents[self._slot(server_id)])
