"""Replica placement: candidate scoring (eq. 3) and proximity (eq. 4).

When a virtual node must add or move a replica it scores every server

    score_j = Σ_k g_j · conf_j · diversity(s_k, s_j) − c_j         (eq. 3)

over its current replica locations s_k, where c_j is the candidate's
posted virtual rent and g_j the client-proximity preference

    g_j = Σ_l q_l / (1 + Σ_l q_l · diversity(l, s_j))              (eq. 4)

computed from the per-location query counts q_l of the node's
partition.  Diversity values are integers up to 63 while rents are
fractions of a dollar, so diversity dominates and the rent acts as the
cost tie-breaker among equally dispersed candidates — "availability is
increased as much as possible at the minimum cost" (§II-B).

Scoring is vectorised over the cloud's slot order; with N servers each
call is a handful of O(N) numpy operations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.cluster.location import Location, diversity
from repro.cluster.topology import Cloud
from repro.core.board import PriceBoard
from repro.workload.clients import ClientGeography


class PlacementError(ValueError):
    """Raised for invalid placement queries."""


def proximity_weights(cloud: Cloud, geography: ClientGeography,
                      query_counts: Optional[Dict[Location, float]] = None
                      ) -> np.ndarray:
    """Eq. 4 preference weight of every server (cloud slot order).

    ``query_counts`` are the per-client-location query counts q_l of
    one partition; when omitted, the geography's long-run shares stand
    in for them.  The uniform geography yields g ≡ 1 exactly as the
    paper assumes (§III-A); discrete geographies are normalised by the
    maximum so g stays in (0, 1] and eq. 3's diversity scale is
    preserved.
    """
    n = len(cloud)
    if n == 0:
        raise PlacementError("empty cloud")
    if geography.is_uniform:
        return np.ones(n, dtype=np.float64)
    if query_counts is not None:
        weighted = [(loc, float(q)) for loc, q in query_counts.items() if q > 0]
    else:
        weighted = geography.weighted_sites()
    if not weighted:
        return np.ones(n, dtype=np.float64)
    servers = cloud.servers()
    total_q = sum(q for __, q in weighted)
    distance = np.zeros(n, dtype=np.float64)
    for site, q in weighted:
        site_div = np.array(
            [diversity(site, s.location) for s in servers], dtype=np.float64
        )
        distance += q * site_div
    raw = total_q / (1.0 + distance)
    peak = raw.max()
    if peak <= 0:
        return np.ones(n, dtype=np.float64)
    return raw / peak


@dataclass(frozen=True)
class Candidate:
    """A scored placement candidate."""

    server_id: int
    score: float
    diversity_gain: float
    rent: float


class PlacementScorer:
    """Eq. 3 scorer bound to one epoch's cloud state and price board.

    ``best_is_pure`` declares that :meth:`best` has no side effects
    (no RNG draws, no state mutation), which is what entitles the
    decision engine to *skip* provably-fruitless calls (the
    :meth:`expansion_rent_floor` fast path).  Subclasses whose ``best``
    consumes randomness — the random-placement ablation — must set it
    to False or their draw stream would depend on the skip.

    Instantiate once per epoch (the simulator does); individual calls
    then reuse the slot-ordered rent/confidence/storage vectors.

    Prices are *anticipated*: every transfer routed through
    :meth:`consume_budget` bumps the destination's cached rent by the
    eq. 1 storage term its bytes will add (the paper's "potentially
    increased virtual rent of the candidate server").  Without this,
    every agent in an epoch sees the same static board and herds onto
    the one argmax server until it is full.
    """

    best_is_pure: bool = True

    def __init__(self, cloud: Cloud, board: PriceBoard,
                 rent_weight: float = 1.0,
                 storage_alpha: float = 1.0,
                 epochs_per_month: int = 720) -> None:
        if rent_weight < 0:
            raise PlacementError(
                f"rent_weight must be >= 0, got {rent_weight}"
            )
        if storage_alpha < 0:
            raise PlacementError(
                f"storage_alpha must be >= 0, got {storage_alpha}"
            )
        if epochs_per_month <= 0:
            raise PlacementError(
                f"epochs_per_month must be > 0, got {epochs_per_month}"
            )
        self._cloud = cloud
        self._ids: List[int] = cloud.server_ids
        self._slot_of: Dict[int, int] = {
            sid: i for i, sid in enumerate(self._ids)
        }
        self._rents = board.price_vector(self._ids)
        self._conf = cloud.confidence_vector()
        self._storage = cloud.storage_available_vector()
        self._capacity = np.array(
            [cloud.server(sid).storage_capacity for sid in self._ids],
            dtype=np.int64,
        )
        self._usage_price = np.array(
            [
                cloud.server(sid).monthly_rent / epochs_per_month
                for sid in self._ids
            ],
            dtype=np.float64,
        )
        self._alive = np.array(
            [cloud.server(sid).alive for sid in self._ids], dtype=bool
        )
        self._rent_weight = rent_weight
        self._storage_alpha = storage_alpha
        self._headroom: Dict[str, np.ndarray] = {}
        self._gain_cache: Dict[object, np.ndarray] = {}
        # Epoch-start rents: anticipated rents only *rise* within an
        # epoch (consume_budget adds eq. 1 bumps), so minima over this
        # snapshot are valid lower bounds for the whole epoch.
        self._rents0 = self._rents.copy()
        self._floor_cache: Dict[int, float] = {}
        # Cached feasibility masks: the alive/storage/budget mask of
        # :meth:`best` depends only on (need_bytes, budget kind,
        # headroom) and the scorer's mutable storage/budget state, so
        # it is cached per key and the whole cache is dropped whenever
        # that state moves (consume_budget / release_storage — every
        # surviving entry would be stale then anyway).  Within an epoch
        # most ``best`` calls share one partition size and no
        # intervening transfer — the pre-PR O(S) mask rebuild per call
        # collapses to a dict hit.
        self._mask_cache: Dict[
            Tuple[int, Optional[str], float], np.ndarray
        ] = {}

    @property
    def server_ids(self) -> List[int]:
        return list(self._ids)

    def _diversity_gain(self, replica_servers: Sequence[int],
                        cache_key: Optional[object] = None) -> np.ndarray:
        """Σ_k conf · diversity(s_k, ·) over the replica set, per slot.

        The expensive half of eq. 3 — O(R) full-cloud row additions —
        depends only on the replica set, not on the scorer's mutable
        rent state, so callers scoring the same set repeatedly within
        one epoch (every expanding agent of a hot partition, each
        iteration of a §II-C repair chain) can pass a ``cache_key``
        identifying the set and pay for the rows once.
        """
        if cache_key is not None:
            cached = self._gain_cache.get(cache_key)
            if cached is not None:
                return cached
        n = len(self._ids)
        div_sum = np.zeros(n, dtype=np.float64)
        for sid in replica_servers:
            if sid in self._cloud:
                div_sum += self._cloud.diversity_row(sid)
        gain = div_sum * self._conf
        if cache_key is not None:
            self._gain_cache[cache_key] = gain
        return gain

    def scores(self, replica_servers: Sequence[int],
               g: Optional[np.ndarray] = None,
               cache_key: Optional[object] = None) -> np.ndarray:
        """Raw eq. 3 score of every server (no feasibility masking)."""
        n = len(self._ids)
        gain = self._diversity_gain(replica_servers, cache_key)
        if g is not None:
            if len(g) != n:
                raise PlacementError(
                    f"g has {len(g)} entries for {n} servers"
                )
            gain = gain * g
        return gain - self._rent_weight * self._rents

    def best(self, replica_servers: Sequence[int], *,
             need_bytes: int = 0,
             g: Optional[np.ndarray] = None,
             max_rent: Optional[float] = None,
             exclude: Sequence[int] = (),
             budget: Optional[str] = None,
             headroom_fraction: float = 0.0,
             cache_key: Optional[object] = None) -> Optional[Candidate]:
        """Feasible argmax of eq. 3, or None when no server qualifies.

        Excluded are: current replica holders (a server holds at most
        one copy of a partition), dead servers, servers without
        ``need_bytes`` free storage, servers in ``exclude``, and — when
        ``max_rent`` is given (migration hunts for *cheaper* hosts) —
        servers at or above that rent.  With ``budget`` set to
        ``"replication"`` or ``"migration"``, destinations whose
        remaining per-epoch bandwidth budget of that class cannot absorb
        ``need_bytes`` are masked as well — without this, every agent in
        an epoch converges on the same argmax server and all but the
        first two transfers bounce off its budget.

        ``headroom_fraction`` reserves that share of each candidate's
        raw capacity on top of ``need_bytes``: cost-motivated moves
        (migration, economic replication) should not pack a destination
        to the brim, or the next insert there fails immediately.  SLA
        repairs pass 0 — protecting data beats placement hygiene.
        """
        if not 0.0 <= headroom_fraction < 1.0:
            raise PlacementError(
                f"headroom_fraction must be in [0, 1), got "
                f"{headroom_fraction}"
            )
        mask = self._feasible_mask(need_bytes, budget, headroom_fraction)
        if max_rent is not None:
            # The rent cap varies per caller (migration hunts under the
            # agent's own rent), so it stays out of the cached mask.
            mask = mask & (self._rents < max_rent)
        if not mask.any():
            # Budget/storage-exhausted epochs hit this constantly; skip
            # the eq. 3 gain/score work when no server qualifies.
            return None
        gain = self._diversity_gain(replica_servers, cache_key)
        if g is not None:
            if len(g) != len(self._ids):
                raise PlacementError(
                    f"g has {len(g)} entries for {len(self._ids)} servers"
                )
            scores = gain * g - self._rent_weight * self._rents
        else:
            scores = gain - self._rent_weight * self._rents
        scores = np.where(mask, scores, -np.inf)
        # Knock out current holders / exclusions by slot lookup — the
        # blocked set is a handful of servers, the cloud is hundreds
        # (and the cached mask must stay unmutated).
        slot_of = self._slot_of
        for sid in replica_servers:
            slot = slot_of.get(sid)
            if slot is not None:
                scores[slot] = -np.inf
        for sid in exclude:
            slot = slot_of.get(sid)
            if slot is not None:
                scores[slot] = -np.inf
        idx = int(np.argmax(scores))
        if not np.isfinite(scores[idx]):
            return None
        return Candidate(
            server_id=self._ids[idx],
            score=float(scores[idx]),
            diversity_gain=float(gain[idx]),
            rent=float(self._rents[idx]),
        )

    def _feasible_mask(self, need_bytes: int, budget: Optional[str],
                       headroom_fraction: float) -> np.ndarray:
        """Alive ∧ storage ∧ budget feasibility, cached per key.

        Treat the returned array as read-only: it is shared across calls
        until storage or budget state moves.
        """
        key = (need_bytes, budget, headroom_fraction)
        cached = self._mask_cache.get(key)
        if cached is not None:
            return cached
        mask = self._alive.copy()
        if headroom_fraction > 0.0:
            reserve = (self._capacity * headroom_fraction).astype(np.int64)
            mask &= self._storage >= need_bytes + reserve
        else:
            mask &= self._storage >= need_bytes
        if budget is not None:
            mask &= self._budget_headroom(budget) >= need_bytes
        self._mask_cache[key] = mask
        return mask

    def _budget_headroom(self, kind: str) -> np.ndarray:
        """Remaining per-epoch bandwidth of every server, slot order.

        Built once per scorer (i.e. per epoch) and then maintained
        incrementally via :meth:`consume_budget` as transfers complete,
        which is what spreads simultaneous placements over distinct
        destinations without rescanning the cloud on every call.
        """
        cached = self._headroom.get(kind)
        if cached is not None:
            return cached
        if kind == "replication":
            values = [
                self._cloud.server(sid).replication_budget.available
                for sid in self._ids
            ]
        elif kind == "migration":
            values = [
                self._cloud.server(sid).migration_budget.available
                for sid in self._ids
            ]
        else:
            raise PlacementError(f"unknown budget kind {kind!r}")
        arr = np.array(values, dtype=np.int64)
        self._headroom[kind] = arr
        return arr

    def expansion_rent_floor(self, nbytes: int) -> float:
        """Epoch lower bound of ``candidate.rent + anticipated bump``.

        For *any* server ``s`` at *any* point in this epoch,
        ``rent_s + Δc_s(nbytes) >= min_s(rent0_s + Δc_s(nbytes))``
        because anticipated rents start at ``rent0`` and only increase.
        An economic replication whose predicted utility cannot clear
        this floor plus its consistency cost would be rejected for every
        candidate, so the caller may skip scoring entirely — same
        decision, none of the eq. 3 work.  Cached per partition size
        (one vector min per distinct size per epoch).
        """
        cached = self._floor_cache.get(nbytes)
        if cached is None:
            # Same operation order as anticipated_rent_bump, so every
            # vector component is bit-identical to the scalar bump —
            # the bound must never exceed the true value by an ulp.
            bumps = (
                self._usage_price * self._storage_alpha * nbytes
                / self._capacity
            )
            cached = float(np.min(self._rents0 + bumps))
            self._floor_cache[nbytes] = cached
        return cached

    def anticipated_rent_bump(self, server_id: int, nbytes: int) -> float:
        """Eq. 1 rent increase ``nbytes`` would cause at a destination.

        ``Δc = up · α · nbytes / capacity`` — the storage term of the
        price function evaluated for the incoming replica's bytes.
        """
        idx = self._slot(server_id)
        return float(
            self._usage_price[idx]
            * self._storage_alpha
            * nbytes
            / self._capacity[idx]
        )

    def consume_budget(self, server_id: int, nbytes: int, kind: str) -> None:
        """Mirror a completed transfer into the cached headroom/storage.

        The caller (decision engine) invokes this for the destination of
        every successful transfer so later placements within the same
        epoch see the reduced budget and storage — and a correspondingly
        *higher* anticipated rent, which is what disperses simultaneous
        placements instead of herding them onto one argmax server.
        """
        idx = self._slot(server_id)
        headroom = self._headroom.get(kind)
        if headroom is not None:
            headroom[idx] = max(headroom[idx] - nbytes, 0)
        self._storage[idx] = max(self._storage[idx] - nbytes, 0)
        self._rents[idx] += self.anticipated_rent_bump(server_id, nbytes)
        self._mask_cache.clear()

    def release_storage(self, server_id: int, nbytes: int) -> None:
        """Mirror freed bytes (migration source, suicide) into the cache."""
        self._storage[self._slot(server_id)] += nbytes
        self._mask_cache.clear()

    def _slot(self, server_id: int) -> int:
        try:
            return self._slot_of[server_id]
        except KeyError:
            raise PlacementError(f"unknown server {server_id}") from None

    def rent_of(self, server_id: int) -> float:
        return float(self._rents[self._slot(server_id)])
