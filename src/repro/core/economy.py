"""Virtual rent pricing — eq. 1 of the paper.

Each epoch a server agent announces the virtual rent price

    c = up · (1 + α · storage_usage + β · query_load)

where ``up`` is the server's *marginal usage price*, derived from the
real monthly rent the data owner pays (100$ or 125$ in the evaluation)
spread over the epochs of a month, and the usage terms are the server's
storage fill fraction and normalised query load of the *current* epoch
(good approximations for the next epoch, §II-A).  Expensive and busy
servers therefore price themselves out of unpopular virtual nodes,
which is the stabilising feedback loop of the whole economy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


from repro.cluster.server import Server
from repro.cluster.topology import Cloud

#: Epochs per month used to spread the real rent.  The evaluation's
#: epoch is best read as ~1 hour (bandwidth budgets of 300 MB/epoch),
#: giving 30 · 24 = 720 epochs per month.
DEFAULT_EPOCHS_PER_MONTH: int = 720


class EconomyError(ValueError):
    """Raised for invalid pricing parameters."""


@dataclass(frozen=True)
class RentModel:
    """Parameters of the eq. 1 price function.

    ``alpha`` weights storage pressure, ``beta`` query pressure; both
    are the paper's normalising factors.  ``epochs_per_month`` converts
    the real monthly rent into the per-epoch marginal usage price
    ``up``.  ``mean_usage_floor`` keeps ``up`` finite on idle servers
    when usage-normalised pricing is enabled.
    """

    alpha: float = 1.0
    beta: float = 1.0
    epochs_per_month: int = DEFAULT_EPOCHS_PER_MONTH
    normalize_by_usage: bool = False
    mean_usage_floor: float = 0.05

    def __post_init__(self) -> None:
        if self.alpha < 0:
            raise EconomyError(f"alpha must be >= 0, got {self.alpha}")
        if self.beta < 0:
            raise EconomyError(f"beta must be >= 0, got {self.beta}")
        if self.epochs_per_month <= 0:
            raise EconomyError(
                f"epochs_per_month must be > 0, got {self.epochs_per_month}"
            )
        if not 0 < self.mean_usage_floor <= 1:
            raise EconomyError(
                f"mean_usage_floor must be in (0, 1], got "
                f"{self.mean_usage_floor}"
            )

    def usage_price(self, server: Server,
                    mean_usage: Optional[float] = None) -> float:
        """Marginal usage price ``up`` of one server.

        The paper derives ``up`` from the total monthly real rent and
        the server's mean usage over the previous month; with
        ``normalize_by_usage`` off (default) the rent is simply spread
        over the month's epochs, which the evaluation's equal-usage
        startup makes equivalent.
        """
        base = server.monthly_rent / self.epochs_per_month
        if not self.normalize_by_usage:
            return base
        usage = self.mean_usage_floor if mean_usage is None else max(
            mean_usage, self.mean_usage_floor
        )
        return base / usage

    def price(self, server: Server,
              mean_usage: Optional[float] = None) -> float:
        """Eq. 1: the virtual rent of ``server`` for the next epoch."""
        up = self.usage_price(server, mean_usage)
        return up * (
            1.0
            + self.alpha * server.storage_usage
            + self.beta * server.query_load
        )

    def price_cloud(self, cloud: Cloud,
                    mean_usages: Optional[Dict[int, float]] = None
                    ) -> Dict[int, float]:
        """Price every live server of the cloud for the next epoch."""
        usages = mean_usages or {}
        return {
            server.server_id: self.price(
                server, usages.get(server.server_id)
            )
            for server in cloud
        }


class UsageTracker:
    """Trailing mean usage per server, for usage-normalised pricing.

    Tracks an exponentially weighted mean of the combined storage/query
    usage so that ``up`` can reflect "the mean usage of the server in
    the previous month" (§II-A) without storing a month of history.
    """

    def __init__(self, horizon: int = DEFAULT_EPOCHS_PER_MONTH) -> None:
        if horizon <= 0:
            raise EconomyError(f"horizon must be > 0, got {horizon}")
        self._decay = 1.0 - 1.0 / horizon
        self._means: Dict[int, float] = {}

    def observe(self, server: Server) -> None:
        usage = 0.5 * (server.storage_usage + min(server.query_load, 1.0))
        prev = self._means.get(server.server_id)
        if prev is None:
            self._means[server.server_id] = usage
        else:
            self._means[server.server_id] = (
                self._decay * prev + (1.0 - self._decay) * usage
            )

    def observe_cloud(self, cloud: Cloud) -> None:
        for server in cloud:
            self.observe(server)

    def mean_usage(self, server_id: int) -> Optional[float]:
        return self._means.get(server_id)

    def means(self) -> Dict[int, float]:
        return dict(self._means)

    def forget(self, server_id: int) -> None:
        self._means.pop(server_id, None)
