"""Virtual rent pricing — eq. 1 of the paper.

Each epoch a server agent announces the virtual rent price

    c = up · (1 + α · storage_usage + β · query_load)

where ``up`` is the server's *marginal usage price*, derived from the
real monthly rent the data owner pays (100$ or 125$ in the evaluation)
spread over the epochs of a month, and the usage terms are the server's
storage fill fraction and normalised query load of the *current* epoch
(good approximations for the next epoch, §II-A).  Expensive and busy
servers therefore price themselves out of unpopular virtual nodes,
which is the stabilising feedback loop of the whole economy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.server import Server
from repro.cluster.topology import Cloud
from repro.store.replica import CatalogListener
from repro.util.columns import ColumnSet, ColumnSpec

#: Epochs per month used to spread the real rent.  The evaluation's
#: epoch is best read as ~1 hour (bandwidth budgets of 300 MB/epoch),
#: giving 30 · 24 = 720 epochs per month.
DEFAULT_EPOCHS_PER_MONTH: int = 720


class EconomyError(ValueError):
    """Raised for invalid pricing parameters."""


@dataclass(frozen=True)
class RentModel:
    """Parameters of the eq. 1 price function.

    ``alpha`` weights storage pressure, ``beta`` query pressure; both
    are the paper's normalising factors.  ``epochs_per_month`` converts
    the real monthly rent into the per-epoch marginal usage price
    ``up``.  ``mean_usage_floor`` keeps ``up`` finite on idle servers
    when usage-normalised pricing is enabled.
    """

    alpha: float = 1.0
    beta: float = 1.0
    epochs_per_month: int = DEFAULT_EPOCHS_PER_MONTH
    normalize_by_usage: bool = False
    mean_usage_floor: float = 0.05

    def __post_init__(self) -> None:
        if self.alpha < 0:
            raise EconomyError(f"alpha must be >= 0, got {self.alpha}")
        if self.beta < 0:
            raise EconomyError(f"beta must be >= 0, got {self.beta}")
        if self.epochs_per_month <= 0:
            raise EconomyError(
                f"epochs_per_month must be > 0, got {self.epochs_per_month}"
            )
        if not 0 < self.mean_usage_floor <= 1:
            raise EconomyError(
                f"mean_usage_floor must be in (0, 1], got "
                f"{self.mean_usage_floor}"
            )

    def usage_price(self, server: Server,
                    mean_usage: Optional[float] = None) -> float:
        """Marginal usage price ``up`` of one server.

        The paper derives ``up`` from the total monthly real rent and
        the server's mean usage over the previous month; with
        ``normalize_by_usage`` off (default) the rent is simply spread
        over the month's epochs, which the evaluation's equal-usage
        startup makes equivalent.
        """
        base = server.monthly_rent / self.epochs_per_month
        if not self.normalize_by_usage:
            return base
        usage = self.mean_usage_floor if mean_usage is None else max(
            mean_usage, self.mean_usage_floor
        )
        return base / usage

    def price(self, server: Server,
              mean_usage: Optional[float] = None) -> float:
        """Eq. 1: the virtual rent of ``server`` for the next epoch."""
        up = self.usage_price(server, mean_usage)
        return up * (
            1.0
            + self.alpha * server.storage_usage
            + self.beta * server.query_load
        )

    def price_cloud(self, cloud: Cloud,
                    mean_usages: Optional[Dict[int, float]] = None
                    ) -> Dict[int, float]:
        """Price every live server of the cloud for the next epoch."""
        usages = mean_usages or {}
        return {
            server.server_id: self.price(
                server, usages.get(server.server_id)
            )
            for server in cloud
        }

    def price_array(self, up: np.ndarray, storage_used: np.ndarray,
                    storage_capacity: np.ndarray, queries: np.ndarray,
                    query_capacity: np.ndarray) -> np.ndarray:
        """Eq. 1 over slot-ordered vectors — one pass for the cloud.

        Every elementwise operation maps one-to-one, in the same
        evaluation order, onto the scalar :meth:`price` arithmetic
        (``up · (1 + α·storage_usage + β·query_load)``), so each entry
        is bit-identical to pricing that server through the scalar
        call.  Only the non-usage-normalised mode is vectorised; the
        normalised mode needs per-server trailing means and stays on
        :meth:`price_cloud`.
        """
        if self.normalize_by_usage:
            raise EconomyError(
                "price_array does not support usage-normalised pricing"
            )
        storage_usage = storage_used / storage_capacity
        query_load = queries / query_capacity
        return up * (
            1.0 + self.alpha * storage_usage + self.beta * query_load
        )


class UsageTracker:
    """Trailing mean usage per server, for usage-normalised pricing.

    Tracks an exponentially weighted mean of the combined storage/query
    usage so that ``up`` can reflect "the mean usage of the server in
    the previous month" (§II-A) without storing a month of history.

    Storage is a ServerTable-style column: one float64 mean per server
    id (ids are assigned densely and never reused), NaN where no
    observation has landed yet.  :meth:`observe_cloud` folds a whole
    epoch as one column pass over the cloud's server table — the same
    elementwise float operations, per entry, as the scalar
    :meth:`observe` — instead of one Python call per server.
    """

    def __init__(self, horizon: int = DEFAULT_EPOCHS_PER_MONTH) -> None:
        if horizon <= 0:
            raise EconomyError(f"horizon must be > 0, got {horizon}")
        self._decay = 1.0 - 1.0 / horizon
        self._cols = ColumnSet(
            self, (ColumnSpec("_mean", np.float64, fill=np.nan),)
        )

    def _ensure(self, max_id: int) -> None:
        if max_id >= self._cols.capacity:
            self._cols.grow(max_id + 1)

    def observe(self, server: Server) -> None:
        usage = 0.5 * (server.storage_usage + min(server.query_load, 1.0))
        sid = server.server_id
        self._ensure(sid)
        prev = self._mean[sid]
        if np.isnan(prev):
            self._mean[sid] = usage
        else:
            self._mean[sid] = (
                self._decay * prev + (1.0 - self._decay) * usage
            )

    def observe_cloud(self, cloud: Cloud) -> None:
        """Fold one epoch's usage for every live server (column pass).

        Bit-identical to calling :meth:`observe` per server: the usage
        expression and the blend are the same float64 operations
        applied elementwise, and each server id is visited once.
        """
        ids = np.asarray(cloud.server_ids, dtype=np.int64)
        if not len(ids):
            return
        self._ensure(int(ids.max()))
        table = cloud.table
        n = len(table)
        storage_usage = table.storage_used[:n] / table.storage_capacity[:n]
        query_load = table.queries[:n] / table.query_capacity[:n]
        usage = 0.5 * (storage_usage + np.minimum(query_load, 1.0))
        prev = self._mean[ids]
        blended = self._decay * prev + (1.0 - self._decay) * usage
        self._mean[ids] = np.where(np.isnan(prev), usage, blended)

    def mean_usage(self, server_id: int) -> Optional[float]:
        if not 0 <= server_id < self._cols.capacity:
            return None
        value = self._mean[server_id]
        return None if np.isnan(value) else float(value)

    def means(self) -> Dict[int, float]:
        """Observed means as ``{server_id: mean}`` (ascending id)."""
        observed = np.flatnonzero(~np.isnan(self._mean))
        values = self._mean[observed]
        return dict(zip(observed.tolist(), values.tolist()))

    def forget(self, server_id: int) -> None:
        if 0 <= server_id < self._cols.capacity:
            self._mean[server_id] = np.nan


class CloudCostIndex(CatalogListener):
    """Maintained slot-ordered cost vectors for one-pass eq. 1 pricing.

    The scalar path prices servers one Python call at a time from the
    live ``Server`` objects — the last O(S) Python loop at epoch start.
    This index keeps the eq. 1 inputs as slot-ordered numpy vectors
    instead:

    * **static terms** (marginal usage price ``up``, storage and query
      capacities) rebuild only when cloud membership changes
      (:attr:`Cloud.version`);
    * **storage usage** is folded incrementally from the replica
      catalog's ``storage_changed`` events (every replicate / migrate /
      suicide / insert growth / split mutates storage *through* the
      catalog in the epoch loop);
    * **query load** is handed over by the epoch kernel: the batched
      eq. 5 settlement already folds per-server query totals, and those
      counters are exactly eq. 1's ``query_load`` numerator for the
      next epoch's repricing.

    Each repriced entry is bit-identical to the scalar
    :meth:`RentModel.price` call (see :meth:`RentModel.price_array`),
    which is what keeps the two epoch kernels frame-identical.  The
    index assumes the engine's discipline — storage moves through the
    catalog, membership through ``Cloud.add/remove`` — and falls back
    to a full rebuild whenever the cloud version moved.
    """

    def __init__(self, cloud: Cloud, model: RentModel,
                 catalog=None) -> None:
        if model.normalize_by_usage:
            raise EconomyError(
                "CloudCostIndex does not support usage-normalised "
                "pricing (per-server trailing means are dict-shaped)"
            )
        self._cloud = cloud
        self._model = model
        self._cloud_version = -1
        self._ids: List[int] = []
        self._up = np.zeros(0, dtype=np.float64)
        self._capacity = np.zeros(0, dtype=np.int64)
        self._query_capacity = np.zeros(0, dtype=np.int64)
        self._storage = np.zeros(0, dtype=np.int64)
        self._queries = np.zeros(0, dtype=np.float64)
        self._catalog = catalog
        if catalog is not None:
            catalog.add_listener(self)

    def detach(self) -> None:
        """Unsubscribe from the catalog (when vectorized pricing is
        disabled mid-run, so mutations stop paying for a dead cache)."""
        if self._catalog is not None:
            self._catalog.remove_listener(self)
            self._catalog = None

    def _sync(self) -> None:
        cloud = self._cloud
        if self._cloud_version == cloud.version:
            return
        self._ids = cloud.server_ids
        # Column reads off the cloud's ServerTable: the same float64 /
        # int64 values the per-server attribute walk produced, gathered
        # as single array copies.
        self._up = (
            cloud.monthly_rent_vector()
            / float(self._model.epochs_per_month)
        )
        self._capacity = cloud.capacity_vector()
        self._query_capacity = cloud.query_capacity_vector()
        self._storage = cloud.storage_used_vector()
        self._queries = cloud.queries_vector()
        self._cloud_version = cloud.version

    def refresh(self) -> None:
        """Force a full rebuild from the live server objects."""
        self._cloud_version = -1
        self._sync()

    # -- CatalogListener -----------------------------------------------------

    def storage_changed(self, server_id: int, delta: int) -> None:
        if self._cloud_version != self._cloud.version:
            return  # stale; the next sync rebuilds from the objects
        self._storage[self._cloud.slot(server_id)] += delta

    # -- epoch handoffs ------------------------------------------------------

    def set_query_totals(self, totals: np.ndarray,
                         cloud_version: int) -> None:
        """Install the epoch's per-slot query counters (from settlement).

        Ignored when the slot order has since changed (``cloud_version``
        mismatch) — the next :meth:`_sync` then reads the surviving
        servers' own counters, which the settlement kept equally
        up to date.
        """
        if cloud_version != self._cloud.version:
            return
        self._sync()
        self._queries = totals

    # -- pricing -------------------------------------------------------------

    def price_vector(self) -> Tuple[List[int], np.ndarray]:
        """(server ids, eq. 1 prices), slot-ordered, for this epoch."""
        self._sync()
        return self._ids, self._model.price_array(
            self._up, self._storage, self._capacity,
            self._queries, self._query_capacity,
        )

    def verify(self) -> None:
        """Assert the maintained vectors mirror the server objects."""
        self._sync()
        cloud = self._cloud
        for slot, sid in enumerate(self._ids):
            server = cloud.server(sid)
            if int(self._storage[slot]) != server.storage_used:
                raise EconomyError(
                    f"storage drift on server {sid}: index "
                    f"{int(self._storage[slot])}, object "
                    f"{server.storage_used}"
                )
