"""Query arrival processes: Poisson epochs with pluggable rate profiles.

The evaluation draws the number of queries per epoch from a Poisson
distribution with mean λ = 3000 (§III-A); the Slashdot experiment
(§III-D) replaces the constant rate with a spike profile.  A rate
profile is any callable ``epoch -> λ``; this module provides the ones
the paper uses plus composition helpers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

RateProfile = Callable[[int], float]


class ArrivalError(ValueError):
    """Raised for invalid arrival-process parameters."""


@dataclass(frozen=True)
class ConstantRate:
    """λ identical in every epoch — the base scenario's 3000/epoch."""

    rate: float

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ArrivalError(f"rate must be >= 0, got {self.rate}")

    def __call__(self, epoch: int) -> float:
        return self.rate


@dataclass(frozen=True)
class PiecewiseLinearRate:
    """Rate interpolated linearly between (epoch, rate) breakpoints.

    Before the first breakpoint the first rate holds; after the last,
    the last rate holds.  This is the building block for spike shapes.
    """

    points: Sequence

    def __post_init__(self) -> None:
        pts = list(self.points)
        if not pts:
            raise ArrivalError("need at least one breakpoint")
        epochs = [e for e, __ in pts]
        if epochs != sorted(epochs) or len(set(epochs)) != len(epochs):
            raise ArrivalError("breakpoint epochs must strictly increase")
        for __, rate in pts:
            if rate < 0:
                raise ArrivalError(f"rate must be >= 0, got {rate}")

    def __call__(self, epoch: int) -> float:
        pts = list(self.points)
        if epoch <= pts[0][0]:
            return float(pts[0][1])
        for (e0, r0), (e1, r1) in zip(pts, pts[1:]):
            if e0 <= epoch <= e1:
                if e1 == e0:
                    return float(r1)
                frac = (epoch - e0) / (e1 - e0)
                return float(r0 + frac * (r1 - r0))
        return float(pts[-1][1])


def scaled(profile: RateProfile, factor: float) -> RateProfile:
    """A profile multiplied by a constant factor (per-application share)."""
    if factor < 0:
        raise ArrivalError(f"factor must be >= 0, got {factor}")

    def rate(epoch: int) -> float:
        return profile(epoch) * factor

    return rate


class PoissonArrivals:
    """Draws the per-epoch query count: ``Poisson(profile(epoch))``."""

    def __init__(self, profile: RateProfile,
                 rng: np.random.Generator) -> None:
        self._profile = profile
        self._rng = rng

    def rate(self, epoch: int) -> float:
        return self._profile(epoch)

    def draw(self, epoch: int) -> int:
        lam = self._profile(epoch)
        if lam < 0:
            raise ArrivalError(f"profile returned negative rate {lam}")
        if lam == 0:
            return 0
        return int(self._rng.poisson(lam))

    def series(self, epochs: int) -> np.ndarray:
        """Convenience: the whole arrival series for a run."""
        return np.array([self.draw(e) for e in range(epochs)], dtype=np.int64)
