"""Partition popularity: the Pareto(1, 50) query-rate distribution.

The paper distributes the popularity of virtual nodes (their query
rates) as Pareto(1, 50) (§III-A).  We read that as the classical Pareto
distribution with shape 1 and scale 50 — a heavy-tailed, Zipf-like law
where a few partitions attract most of the traffic, which is the regime
the virtual economy is designed to balance.  Popularities are used as
*weights*: each epoch's total query count is divided among partitions
proportionally, so only the normalised shape matters and the scale
cancels out.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.ring.partition import PartitionId


class PopularityError(ValueError):
    """Raised for invalid popularity parameters."""


def pareto_weights(count: int, *, shape: float = 1.0, scale: float = 50.0,
                   rng: np.random.Generator) -> np.ndarray:
    """Draw ``count`` raw Pareto(shape, scale) popularity weights.

    numpy's ``pareto`` samples the Lomax distribution; the classical
    Pareto variate with minimum ``scale`` is ``scale * (1 + lomax)``.
    """
    if count <= 0:
        raise PopularityError(f"count must be > 0, got {count}")
    if shape <= 0:
        raise PopularityError(f"shape must be > 0, got {shape}")
    if scale <= 0:
        raise PopularityError(f"scale must be > 0, got {scale}")
    return scale * (1.0 + rng.pareto(shape, size=count))


def normalized(weights: Sequence[float]) -> np.ndarray:
    """Normalise weights to a probability vector."""
    arr = np.asarray(weights, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise PopularityError("weights must be a non-empty 1-D sequence")
    if np.any(arr < 0):
        raise PopularityError("weights must be non-negative")
    total = arr.sum()
    if total <= 0:
        raise PopularityError("weights must not sum to zero")
    return arr / total


class PopularityMap:
    """Mutable popularity weights per partition.

    Maintains the invariant needed across partition splits: children
    inherit the parent's weight split by the given share, so the total
    attraction of a key range is conserved no matter how it is
    partitioned.
    """

    def __init__(self, weights: Dict[PartitionId, float] = None) -> None:
        self._weights: Dict[PartitionId, float] = {}
        self._version = 0
        if weights:
            for pid, w in weights.items():
                self.set(pid, w)

    @property
    def version(self) -> int:
        """Monotone counter bumped on every weight change.

        Lets per-epoch consumers (the workload mix's share vectors)
        cache derived arrays until the popularity actually moves.
        """
        return self._version

    def __len__(self) -> int:
        return len(self._weights)

    def __contains__(self, pid: PartitionId) -> bool:
        return pid in self._weights

    def get(self, pid: PartitionId) -> float:
        try:
            return self._weights[pid]
        except KeyError:
            raise PopularityError(f"no popularity for {pid}") from None

    def set(self, pid: PartitionId, weight: float) -> None:
        if weight < 0:
            raise PopularityError(f"weight must be >= 0, got {weight}")
        self._weights[pid] = float(weight)
        self._version += 1

    def remove(self, pid: PartitionId) -> float:
        self._version += 1
        return self._weights.pop(pid, 0.0)

    def split(self, parent: PartitionId, low: PartitionId,
              high: PartitionId, *, low_share: float = 0.5) -> None:
        """Move a parent's weight onto its two children."""
        if not 0.0 <= low_share <= 1.0:
            raise PopularityError(
                f"low_share must be in [0, 1], got {low_share}"
            )
        weight = self._weights.pop(parent, 0.0)
        self._weights[low] = weight * low_share
        self._weights[high] = weight - self._weights[low]
        self._version += 1

    @property
    def total(self) -> float:
        return sum(self._weights.values())

    def shares(self, pids: Iterable[PartitionId]) -> np.ndarray:
        """Probability vector over ``pids`` (normalised weights)."""
        ordered: List[PartitionId] = list(pids)
        if not ordered:
            raise PopularityError("no partitions given")
        raw = np.array(
            [self._weights.get(pid, 0.0) for pid in ordered],
            dtype=np.float64,
        )
        total = raw.sum()
        if total <= 0:
            # Degenerate: all-zero popularity ⇒ uniform shares.
            return np.full(len(ordered), 1.0 / len(ordered))
        return raw / total

    @classmethod
    def pareto(cls, pids: Sequence[PartitionId], *, shape: float = 1.0,
               scale: float = 50.0,
               rng: np.random.Generator) -> "PopularityMap":
        """Paper §III-A initialisation: Pareto(1, 50) weights per partition."""
        weights = pareto_weights(
            len(pids), shape=shape, scale=scale, rng=rng
        )
        return cls(dict(zip(pids, weights.tolist())))
