"""The Slashdot-effect load profile of the Fig. 4 experiment.

§III-D: "At epoch 100, the mean rate queries/epoch increases from 3000
to 183000 in 25 epochs and then slowly decreases for 250 epochs until it
reaches the initial rate of 3000."  The profile is a linear ramp up over
25 epochs followed by a linear decay over 250 epochs back to baseline.
"""

from __future__ import annotations

from repro.workload.arrivals import ArrivalError, PiecewiseLinearRate, RateProfile


def slashdot_profile(*, base_rate: float = 3000.0,
                     peak_rate: float = 183000.0,
                     spike_epoch: int = 100,
                     ramp_epochs: int = 25,
                     decay_epochs: int = 250) -> RateProfile:
    """Build the paper's Slashdot spike as a piecewise-linear profile."""
    if base_rate < 0 or peak_rate < base_rate:
        raise ArrivalError(
            f"need 0 <= base_rate <= peak_rate, got {base_rate}, {peak_rate}"
        )
    if spike_epoch < 0:
        raise ArrivalError(f"spike_epoch must be >= 0, got {spike_epoch}")
    if ramp_epochs <= 0 or decay_epochs <= 0:
        raise ArrivalError("ramp_epochs and decay_epochs must be > 0")
    return PiecewiseLinearRate(
        points=(
            (0, base_rate),
            (spike_epoch, base_rate),
            (spike_epoch + ramp_epochs, peak_rate),
            (spike_epoch + ramp_epochs + decay_epochs, base_rate),
        )
    )


#: Ratio between the spike peak and the base rate in the paper: 61x.
PAPER_SPIKE_FACTOR: float = 183000.0 / 3000.0
