"""Workload generators: popularity, arrivals, geography, spikes, inserts."""

from repro.workload.arrivals import (
    ArrivalError,
    ConstantRate,
    PiecewiseLinearRate,
    PoissonArrivals,
    RateProfile,
    scaled,
)
from repro.workload.clients import (
    UNIFORM,
    ClientGeography,
    GeographyError,
    country_site,
    hotspot,
    mixture,
    uniform_geography,
    uniform_over_countries,
)
from repro.workload.inserts import (
    keyspace_shares,
    DEFAULT_INSERT_RATE,
    DEFAULT_OBJECT_SIZE,
    InsertBatch,
    InsertError,
    InsertOutcome,
    InsertWorkload,
)
from repro.workload.mix import (
    ApplicationSpec,
    EpochLoad,
    WorkloadError,
    WorkloadMix,
    paper_apps,
)
from repro.workload.popularity import (
    PopularityError,
    PopularityMap,
    normalized,
    pareto_weights,
)
from repro.workload.slashdot import PAPER_SPIKE_FACTOR, slashdot_profile

__all__ = [
    "ApplicationSpec",
    "ArrivalError",
    "ClientGeography",
    "ConstantRate",
    "DEFAULT_INSERT_RATE",
    "DEFAULT_OBJECT_SIZE",
    "EpochLoad",
    "GeographyError",
    "InsertBatch",
    "InsertError",
    "InsertOutcome",
    "InsertWorkload",
    "PAPER_SPIKE_FACTOR",
    "PiecewiseLinearRate",
    "PoissonArrivals",
    "PopularityError",
    "PopularityMap",
    "RateProfile",
    "UNIFORM",
    "WorkloadError",
    "WorkloadMix",
    "country_site",
    "hotspot",
    "mixture",
    "normalized",
    "paper_apps",
    "pareto_weights",
    "scaled",
    "slashdot_profile",
    "uniform_geography",
    "uniform_over_countries",
]
