"""Geographic distribution of query clients.

Eq. 4's proximity weight g_j depends on how many queries originate from
each client location l.  The paper's evaluation assumes a Uniform client
geography (g_j = 1 for every server); regional scenarios — the reason
geographic placement exists at all — need skewed geographies, so this
module provides uniform, single-hotspot and mixture distributions over
the location tree.

Client locations are modelled at *country* granularity (a client is
"somewhere in country X"): its Location carries zeros below the country
level, and diversity against a server then reflects how far the query
travels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.location import Location
from repro.cluster.topology import CloudLayout


class GeographyError(ValueError):
    """Raised for invalid client-geography parameters."""


def country_site(layout: CloudLayout, country_index: int) -> Location:
    """The representative client location of one country of the layout."""
    if not 0 <= country_index < layout.countries:
        raise GeographyError(
            f"country_index must be in [0, {layout.countries}), "
            f"got {country_index}"
        )
    return Location(
        continent=country_index // layout.countries_per_continent,
        country=country_index % layout.countries_per_continent,
        datacenter=0,
        room=0,
        rack=0,
        server=0,
    )


@dataclass(frozen=True)
class ClientGeography:
    """A fixed probability distribution over client locations.

    ``sites`` and ``shares`` are parallel; shares must sum to 1.  The
    special value ``UNIFORM`` (no sites) denotes the paper's uniform
    assumption, under which proximity plays no role (g_j ≡ 1) and the
    simulator can skip per-location accounting entirely.
    """

    sites: Tuple[Location, ...] = ()
    shares: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if len(self.sites) != len(self.shares):
            raise GeographyError("sites and shares must be parallel")
        if self.sites:
            if any(s < 0 for s in self.shares):
                raise GeographyError("shares must be non-negative")
            total = sum(self.shares)
            if not np.isclose(total, 1.0):
                raise GeographyError(f"shares must sum to 1, got {total}")

    @property
    def is_uniform(self) -> bool:
        return not self.sites

    def weighted_sites(self) -> List[Tuple[Location, float]]:
        return list(zip(self.sites, self.shares))

    def query_split(self, total_queries: int,
                    rng: Optional[np.random.Generator] = None
                    ) -> Dict[Location, int]:
        """Split an epoch's queries over client locations.

        With an rng the split is multinomial; without, deterministic
        proportional rounding (largest remainders) is used.
        """
        if total_queries < 0:
            raise GeographyError(
                f"total_queries must be >= 0, got {total_queries}"
            )
        if self.is_uniform:
            raise GeographyError("uniform geography has no discrete sites")
        if rng is not None:
            counts = rng.multinomial(total_queries, np.array(self.shares))
            return dict(zip(self.sites, counts.tolist()))
        shares = np.array(self.shares)
        raw = shares * total_queries
        counts = np.floor(raw).astype(int)
        remainder = total_queries - int(counts.sum())
        if remainder > 0:
            order = np.argsort(-(raw - counts))
            for i in order[:remainder]:
                counts[i] += 1
        return dict(zip(self.sites, counts.tolist()))


#: The paper's evaluation assumption (§III-A).
UNIFORM = ClientGeography()


def uniform_geography() -> ClientGeography:
    """Uniform clients: proximity weight 1 everywhere (paper §III-A)."""
    return UNIFORM


def uniform_over_countries(layout: CloudLayout) -> ClientGeography:
    """Equal client share in every country — the *explicit* uniform.

    Behaviourally equivalent to :data:`UNIFORM` for placement (all
    servers equally close in aggregate) but exercises the per-location
    accounting paths.
    """
    sites = tuple(
        country_site(layout, c) for c in range(layout.countries)
    )
    share = 1.0 / layout.countries
    return ClientGeography(sites=sites, shares=(share,) * layout.countries)


def hotspot(layout: CloudLayout, country_index: int, *,
            concentration: float = 0.8) -> ClientGeography:
    """Most clients in one country, the rest spread uniformly.

    Models a regional application (the motivation for per-application
    geographic placement in §I).
    """
    if not 0.0 < concentration <= 1.0:
        raise GeographyError(
            f"concentration must be in (0, 1], got {concentration}"
        )
    sites = tuple(country_site(layout, c) for c in range(layout.countries))
    rest = (1.0 - concentration) / max(layout.countries - 1, 1)
    shares = tuple(
        concentration if c == country_index else rest
        for c in range(layout.countries)
    )
    # Renormalise exactly (guards the 1-country degenerate case).
    total = sum(shares)
    shares = tuple(s / total for s in shares)
    return ClientGeography(sites=sites, shares=shares)


@dataclass(frozen=True)
class ClientRequest:
    """One synthetic data-plane operation drawn by :class:`DataPlaneClients`."""

    kind: str  # "get" | "put"
    app_id: int
    ring_id: int
    key: bytes
    value: Optional[bytes]  # None for gets
    client: Optional[Location]


class DataPlaneClients:
    """Synthetic get/put client traffic for the stale-view data plane.

    Draws ``ops_per_epoch`` operations per epoch over a fixed,
    Zipf-weighted key universe (rank ``i`` drawn with probability
    ∝ 1/(i+1) — the same skew shape the query-popularity model uses),
    splitting get/put by ``read_fraction``.  Values encode the epoch
    and draw index so every write is distinguishable; optional client
    ``sites`` attach a geography so proximity routing is exercised.

    The draw order is deterministic per RNG stream, which is what lets
    the consistency audit replay the exact history against committed
    ground truth.
    """

    def __init__(self, *, apps: Sequence[Tuple[int, int]],
                 ops_per_epoch: int, read_fraction: float,
                 keyspace: int, value_size: int,
                 rng: np.random.Generator,
                 sites: Sequence[Location] = ()) -> None:
        if not apps:
            raise GeographyError("need at least one (app_id, ring_id)")
        if ops_per_epoch < 0:
            raise GeographyError(
                f"ops_per_epoch must be >= 0, got {ops_per_epoch}"
            )
        if keyspace < 1:
            raise GeographyError(f"keyspace must be >= 1, got {keyspace}")
        if not 0.0 <= read_fraction <= 1.0:
            raise GeographyError(
                f"read_fraction must be in [0, 1], got {read_fraction}"
            )
        if value_size < 1:
            raise GeographyError(
                f"value_size must be >= 1, got {value_size}"
            )
        self._apps = tuple(apps)
        self._ops = ops_per_epoch
        self._read_fraction = read_fraction
        self._value_size = value_size
        self._rng = rng
        self._sites = tuple(sites)
        self._keys = tuple(
            f"dp-{i:06d}".encode("ascii") for i in range(keyspace)
        )
        weights = 1.0 / (np.arange(keyspace, dtype=np.float64) + 1.0)
        self._weights = weights / weights.sum()

    @property
    def keys(self) -> Tuple[bytes, ...]:
        return self._keys

    def _value(self, epoch: int, index: int) -> bytes:
        stamp = f"e{epoch}-i{index}-".encode("ascii")
        pad = self._value_size - len(stamp)
        if pad <= 0:
            return stamp[: self._value_size]
        return stamp + b"x" * pad

    def draw(self, epoch: int) -> List[ClientRequest]:
        """One epoch's operations, in issue order."""
        rng = self._rng
        out: List[ClientRequest] = []
        for i in range(self._ops):
            app_id, ring_id = self._apps[
                int(rng.integers(len(self._apps)))
            ]
            key = self._keys[
                int(rng.choice(len(self._keys), p=self._weights))
            ]
            client = None
            if self._sites:
                client = self._sites[int(rng.integers(len(self._sites)))]
            if float(rng.random()) < self._read_fraction:
                out.append(ClientRequest(
                    kind="get", app_id=app_id, ring_id=ring_id,
                    key=key, value=None, client=client,
                ))
            else:
                out.append(ClientRequest(
                    kind="put", app_id=app_id, ring_id=ring_id,
                    key=key, value=self._value(epoch, i), client=client,
                ))
        return out


def mixture(components: Sequence[Tuple[ClientGeography, float]]
            ) -> ClientGeography:
    """Weighted mixture of discrete geographies."""
    if not components:
        raise GeographyError("need at least one component")
    accum: Dict[Location, float] = {}
    weight_total = sum(w for __, w in components)
    if weight_total <= 0:
        raise GeographyError("component weights must sum to > 0")
    for geo, weight in components:
        if geo.is_uniform:
            raise GeographyError("cannot mix the symbolic UNIFORM geography")
        for site, share in geo.weighted_sites():
            accum[site] = accum.get(site, 0.0) + share * (weight / weight_total)
    sites = tuple(accum.keys())
    shares = tuple(accum.values())
    return ClientGeography(sites=sites, shares=shares)
