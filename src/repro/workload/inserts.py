"""Insert workload for the storage-saturation experiment (Fig. 5).

§III-E: data is inserted at 2000 requests/epoch, 500 KB each, and the
requests are "Pareto(1, 50)-distributed".  Two readings are supported:

* ``keyspace`` routing (default): inserts carry *new keys*, and new
  keys hash uniformly over the ring, so a partition's insert inflow is
  proportional to its arc fraction; the Pareto law describes the
  popularity the inserted items will attract.  Splits halve a
  partition's arc and therefore its inflow — storage growth is
  self-balancing, which is what lets the paper fill the cloud to 96 %
  before the first insert failure.
* ``popularity`` routing: inserts target partitions with the same
  Pareto skew as queries.  This concentrates growth onto hot ranges
  far faster than the epoch-scale economy can spread it and serves as
  the stress variant in the ablation benches.

An insert *fails* when the owning partition cannot grow on every one
of its replica servers; Fig. 5 plots failures against used capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.ring.partition import Partition, PartitionId
from repro.workload.popularity import PopularityMap

#: Paper §III-E defaults.
DEFAULT_INSERT_RATE: int = 2000
DEFAULT_OBJECT_SIZE: int = 500 * 1024  # 500 KB


class InsertError(ValueError):
    """Raised for invalid insert-workload parameters."""


@dataclass(frozen=True)
class InsertBatch:
    """One epoch's insert demand, per partition."""

    epoch: int
    counts: Dict[PartitionId, int]
    object_size: int

    @property
    def total_inserts(self) -> int:
        return sum(self.counts.values())

    @property
    def total_bytes(self) -> int:
        return self.total_inserts * self.object_size

    def bytes_for(self, pid: PartitionId) -> int:
        return self.counts.get(pid, 0) * self.object_size


#: Valid values for :class:`InsertWorkload`'s routing mode.
ROUTING_MODES = ("keyspace", "popularity")


def keyspace_shares(partitions: Sequence[Partition]) -> np.ndarray:
    """Insert shares proportional to each partition's arc fraction."""
    if not partitions:
        raise InsertError("no partitions to insert into")
    fractions = np.array(
        [p.key_range.fraction for p in partitions], dtype=np.float64
    )
    total = fractions.sum()
    if total <= 0:
        raise InsertError("partitions cover no key space")
    return fractions / total


class InsertWorkload:
    """Generates insert batches epoch by epoch.

    Shares are recomputed from the live partition set at every call, so
    splits automatically rebalance the stream: under keyspace routing a
    split halves each child's inflow; under popularity routing children
    inherit the parent's Pareto weight.
    """

    def __init__(self, *, rate: int = DEFAULT_INSERT_RATE,
                 object_size: int = DEFAULT_OBJECT_SIZE,
                 routing: str = "keyspace",
                 rng: np.random.Generator) -> None:
        if rate < 0:
            raise InsertError(f"rate must be >= 0, got {rate}")
        if object_size <= 0:
            raise InsertError(f"object_size must be > 0, got {object_size}")
        if routing not in ROUTING_MODES:
            raise InsertError(
                f"routing must be one of {ROUTING_MODES}, got {routing!r}"
            )
        self.rate = rate
        self.object_size = object_size
        self.routing = routing
        self._rng = rng

    def batch(self, epoch: int, partitions: Sequence[Partition],
              popularity: PopularityMap) -> InsertBatch:
        """Draw this epoch's insert counts across ``partitions``."""
        ordered: List[Partition] = list(partitions)
        if not ordered:
            raise InsertError("no partitions to insert into")
        if self.rate == 0:
            return InsertBatch(epoch, {}, self.object_size)
        if self.routing == "keyspace":
            shares = keyspace_shares(ordered)
        else:
            shares = popularity.shares([p.pid for p in ordered])
        counts = self._rng.multinomial(self.rate, shares)
        nonzero = {
            p.pid: int(c) for p, c in zip(ordered, counts.tolist()) if c
        }
        return InsertBatch(epoch, nonzero, self.object_size)


@dataclass
class InsertOutcome:
    """Result of applying one epoch's insert batch."""

    epoch: int
    attempted: int = 0
    succeeded: int = 0
    failed: int = 0
    bytes_written: int = 0

    @property
    def failure_rate(self) -> float:
        return self.failed / self.attempted if self.attempted else 0.0
