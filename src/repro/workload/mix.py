"""Multi-application workload mix: queries per epoch, app and partition.

The Fig. 4 experiment assumes applications 1, 2, 3 attract 4/7, 2/7 and
1/7 of the total query load (§III-D).  Each epoch the mix draws the
cloud-wide query count from the arrival process, splits it across
applications by their share, and across each application's partitions
by Pareto popularity — all with multinomial draws, so the per-epoch cost
is O(partitions) regardless of the query rate (essential at the 183 000
queries/epoch Slashdot peak).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.ring.partition import PartitionId, PartitionIndex, gather_int
from repro.workload.arrivals import PoissonArrivals, RateProfile
from repro.workload.clients import ClientGeography, uniform_geography
from repro.workload.popularity import PopularityMap


class WorkloadError(ValueError):
    """Raised for inconsistent workload-mix configuration."""


@dataclass(frozen=True)
class ApplicationSpec:
    """One tenant application of the cloud.

    ``query_share`` is the application's fraction of the total query
    load; ``geography`` describes where its clients sit (the paper's
    evaluation uses the uniform geography for all apps).
    """

    app_id: int
    name: str
    query_share: float
    geography: ClientGeography = field(default_factory=uniform_geography)

    def __post_init__(self) -> None:
        if self.query_share < 0:
            raise WorkloadError(
                f"query_share must be >= 0, got {self.query_share}"
            )


class EpochLoad:
    """One epoch's query demand: counts per partition, per application.

    The demand is held either as a ``PartitionId``-keyed dict (the
    reference representation) or — when the drawing mix carries a
    :class:`~repro.ring.partition.PartitionIndex` — as a dense
    ``counts`` vector in that index's slot space, which the vectorized
    epoch kernel gathers from directly instead of performing one dict
    lookup per partition per epoch.  Both representations answer
    :meth:`queries_for` with identical integers; :attr:`per_partition`
    is materialised lazily from the vector when someone asks for it.
    """

    __slots__ = (
        "epoch", "total_queries", "per_app", "_per_partition",
        "_counts", "_index",
    )

    def __init__(self, epoch: int, total_queries: int,
                 per_app: Dict[int, int],
                 per_partition: Optional[Dict[PartitionId, int]] = None,
                 *, counts: Optional[np.ndarray] = None,
                 index: Optional[PartitionIndex] = None) -> None:
        if per_partition is None and counts is None:
            per_partition = {}
        if (counts is None) != (index is None):
            raise WorkloadError(
                "dense counts and their partition index come together"
            )
        self.epoch = epoch
        self.total_queries = total_queries
        self.per_app = per_app
        self._per_partition = per_partition
        self._counts = counts
        self._index = index

    @property
    def counts(self) -> Optional[np.ndarray]:
        """Dense per-partition counts (read-only), or None."""
        return self._counts

    @property
    def index(self) -> Optional[PartitionIndex]:
        """The slot space :attr:`counts` is addressed in, or None."""
        return self._index

    @property
    def per_partition(self) -> Dict[PartitionId, int]:
        built = self._per_partition
        if built is None:
            counts = self._counts
            built = {}
            for pid, slot in self._index.items():
                if slot < counts.size and counts[slot]:
                    built[pid] = int(counts[slot])
            self._per_partition = built
        return built

    def queries_for(self, pid: PartitionId) -> int:
        counts = self._counts
        if counts is not None:
            slot = self._index.get(pid)
            if slot is None or slot >= counts.size:
                return 0
            return int(counts[slot])
        return self._per_partition.get(pid, 0)

    def counts_at(self, slots: np.ndarray) -> Optional[np.ndarray]:
        """Counts gathered at index ``slots`` (0 where unknown), or None
        when this load was drawn without a dense vector."""
        if self._counts is None:
            return None
        return gather_int(self._counts, slots)


class WorkloadMix:
    """Draws per-epoch, per-partition query counts for all applications."""

    def __init__(self, apps: Sequence[ApplicationSpec],
                 profile: RateProfile,
                 rng: np.random.Generator,
                 partition_index: Optional[PartitionIndex] = None) -> None:
        if not apps:
            raise WorkloadError("need at least one application")
        ids = [a.app_id for a in apps]
        if len(set(ids)) != len(ids):
            raise WorkloadError(f"duplicate app ids: {ids}")
        total_share = sum(a.query_share for a in apps)
        if total_share <= 0:
            raise WorkloadError("application shares must sum to > 0")
        self.apps: Tuple[ApplicationSpec, ...] = tuple(apps)
        self._shares = np.array(
            [a.query_share / total_share for a in apps], dtype=np.float64
        )
        self._arrivals = PoissonArrivals(profile, rng)
        self._rng = rng
        # With a shared partition index, draws scatter straight into a
        # dense count vector (the vectorized kernel's EpochLoad); the
        # draw sequence itself is identical either way.
        self._pindex = partition_index
        # Per-app popularity share vectors, cached while neither the
        # app's partition list (same object ⇒ same contents: the engine
        # rebuilds it only on splits) nor the popularity map changed.
        self._share_cache: Dict[int, Tuple[object, int, np.ndarray]] = {}
        # Per-app dense-slot arrays, cached against the partition-list
        # object identity (slots never change once assigned).
        self._slot_cache: Dict[int, Tuple[object, np.ndarray]] = {}

    def app(self, app_id: int) -> ApplicationSpec:
        for spec in self.apps:
            if spec.app_id == app_id:
                return spec
        raise WorkloadError(f"unknown app id {app_id}")

    def rate(self, epoch: int) -> float:
        return self._arrivals.rate(epoch)

    def draw(self, epoch: int,
             partitions_of: Dict[int, Sequence[PartitionId]],
             popularity: PopularityMap) -> EpochLoad:
        """Sample one epoch of load.

        ``partitions_of`` maps each app id to its current partitions
        (across all of that app's rings); splits that happened in prior
        epochs are therefore reflected automatically.
        """
        total = self._arrivals.draw(epoch)
        app_counts = self._rng.multinomial(total, self._shares)
        per_app: Dict[int, int] = {}
        pindex = self._pindex
        per_partition: Optional[Dict[PartitionId, int]] = (
            None if pindex is not None else {}
        )
        drawn: List[Tuple[np.ndarray, np.ndarray]] = []
        for spec, count in zip(self.apps, app_counts.tolist()):
            per_app[spec.app_id] = int(count)
            if count == 0:
                continue
            pids = partitions_of.get(spec.app_id, ())
            if not pids:
                raise WorkloadError(
                    f"app {spec.app_id} has queries but no partitions"
                )
            pop_version = popularity.version
            cached = self._share_cache.get(spec.app_id)
            if (
                cached is not None
                and cached[0] is pids
                and cached[1] == pop_version
            ):
                shares = cached[2]
            else:
                shares = popularity.shares(pids)
                self._share_cache[spec.app_id] = (pids, pop_version, shares)
            counts = self._rng.multinomial(count, shares)
            if per_partition is None:
                slots = self._slot_cache.get(spec.app_id)
                if slots is None or slots[0] is not pids:
                    slots = (pids, pindex.slots_of(pids))
                    self._slot_cache[spec.app_id] = slots
                drawn.append((slots[1], counts))
            else:
                for pid, c in zip(pids, counts.tolist()):
                    if c:
                        per_partition[pid] = per_partition.get(pid, 0) + int(c)
        dense: Optional[np.ndarray] = None
        if pindex is not None:
            # Apps own disjoint partition sets, so per-app scatters can
            # never collide on a slot — plain fancy assignment adds the
            # same integers the dict accumulation would.
            dense = np.zeros(len(pindex), dtype=np.int64)
            for slots_arr, counts in drawn:
                dense[slots_arr] += counts
        return EpochLoad(
            epoch=epoch,
            total_queries=int(total),
            per_app=per_app,
            per_partition=per_partition,
            counts=dense,
            index=pindex,
        )


def paper_apps() -> List[ApplicationSpec]:
    """The three applications of the evaluation with 4/7, 2/7, 1/7 shares."""
    return [
        ApplicationSpec(app_id=0, name="app-1", query_share=4.0 / 7.0),
        ApplicationSpec(app_id=1, name="app-2", query_share=2.0 / 7.0),
        ApplicationSpec(app_id=2, name="app-3", query_share=1.0 / 7.0),
    ]
