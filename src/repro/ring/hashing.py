"""Stable consistent hashing over a 64-bit ring.

Skute locates data with a variant of consistent hashing (paper §I): a
key is hashed onto a fixed circular space and owned by the partition
whose token range covers it, giving O(1) DHT lookups.  Hashes must be
stable across processes and runs (Python's builtin ``hash`` is salted),
so keys are digested with BLAKE2b truncated to 64 bits.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, List, Union

#: Size of the hash ring: positions live in [0, RING_SIZE).
RING_BITS: int = 64
RING_SIZE: int = 1 << RING_BITS

Key = Union[str, bytes, int]


class HashError(TypeError):
    """Raised for keys of unsupported type."""


def _to_bytes(key: Key) -> bytes:
    if isinstance(key, bytes):
        return key
    if isinstance(key, str):
        return key.encode("utf-8")
    if isinstance(key, int) and not isinstance(key, bool):
        # Fixed-width encoding so int keys hash consistently.
        return key.to_bytes(16, "big", signed=True)
    raise HashError(f"unsupported key type: {type(key).__name__}")


def hash_key(key: Key) -> int:
    """Position of ``key`` on the ring, a stable 64-bit integer."""
    digest = hashlib.blake2b(_to_bytes(key), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def hash_token(namespace: str, index: int) -> int:
    """Derive the ``index``-th token of a named ring.

    Used to scatter the initial partition boundaries of each virtual
    ring pseudo-randomly but reproducibly.
    """
    return hash_key(f"{namespace}#{index}")


def ring_distance(start: int, end: int) -> int:
    """Clockwise distance from ``start`` to ``end`` on the ring."""
    return (end - start) % RING_SIZE


def in_range(position: int, start: int, end: int) -> bool:
    """True when ``position`` lies in the half-open arc (start, end].

    Token ranges follow the paper/Dynamo convention: a virtual node with
    token t owns keys in (previous token, t].  An arc with ``start ==
    end`` covers the whole ring (single-token degenerate case).
    """
    position %= RING_SIZE
    start %= RING_SIZE
    end %= RING_SIZE
    if start == end:
        return True
    if start < end:
        return start < position <= end
    return position > start or position <= end


def midpoint(start: int, end: int) -> int:
    """Point halfway along the clockwise arc from ``start`` to ``end``.

    Splitting a partition at the midpoint of its arc halves its key
    space; for an arc covering the whole ring the antipode is returned.
    """
    span = ring_distance(start, end)
    if span == 0:
        span = RING_SIZE
    return (start + span // 2) % RING_SIZE


def evenly_spaced_tokens(count: int, offset: int = 0) -> List[int]:
    """``count`` tokens splitting the ring into equal arcs.

    The paper splits the key space of each ring into M partitions at
    startup; equal arcs give every partition an equal share of a
    uniformly hashed key population.
    """
    if count <= 0:
        raise ValueError(f"count must be > 0, got {count}")
    step = RING_SIZE // count
    return [(offset + (i + 1) * step) % RING_SIZE for i in range(count)]


def sorted_unique_tokens(tokens: Iterable[int]) -> List[int]:
    """Normalise a token set: wrap into range, dedupe, sort ascending."""
    return sorted({t % RING_SIZE for t in tokens})
