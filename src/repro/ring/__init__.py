"""Ring substrate: consistent hashing, key ranges, partitions, rings."""

from repro.ring.hashing import (
    RING_BITS,
    RING_SIZE,
    HashError,
    Key,
    evenly_spaced_tokens,
    hash_key,
    hash_token,
    in_range,
    midpoint,
    ring_distance,
    sorted_unique_tokens,
)
from repro.ring.keyspace import (
    KeyRange,
    KeyRangeError,
    covers_ring,
    full_ring,
    ranges_from_tokens,
)
from repro.ring.partition import (
    DEFAULT_PARTITION_CAPACITY,
    Partition,
    PartitionError,
    PartitionId,
    PartitionIdAllocator,
)
from repro.ring.router import Route, Router, RoutingError
from repro.ring.virtualring import (
    AvailabilityLevel,
    RingError,
    RingSet,
    VirtualRing,
    build_ring,
)

__all__ = [
    "AvailabilityLevel",
    "DEFAULT_PARTITION_CAPACITY",
    "HashError",
    "Key",
    "KeyRange",
    "KeyRangeError",
    "Partition",
    "PartitionError",
    "PartitionId",
    "PartitionIdAllocator",
    "RING_BITS",
    "RING_SIZE",
    "RingError",
    "RingSet",
    "Route",
    "Router",
    "RoutingError",
    "VirtualRing",
    "build_ring",
    "covers_ring",
    "evenly_spaced_tokens",
    "full_ring",
    "hash_key",
    "hash_token",
    "in_range",
    "midpoint",
    "ranges_from_tokens",
    "ring_distance",
    "sorted_unique_tokens",
]
