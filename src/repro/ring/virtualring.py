"""Virtual rings: one hash ring per application availability level.

The paper's core structural novelty (§I): instead of one shared ring,
every application gets one virtual ring *per availability level it
demands*.  Each ring tiles the key space with partitions; a partition's
data is replicated independently by its virtual-node agents, so the
replication degree and placement of one application never interferes
with another's.

:class:`VirtualRing` maintains the token → partition mapping with
O(log M) key lookup (bisect over sorted arc ends) and handles partition
splits in place.  :class:`RingSet` is the registry of all rings in the
cloud, keyed by (app_id, ring_id).
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.ring.hashing import RING_SIZE, Key, hash_key
from repro.ring.keyspace import covers_ring, ranges_from_tokens
from repro.ring.partition import (
    DEFAULT_PARTITION_CAPACITY,
    Partition,
    PartitionError,
    PartitionId,
    PartitionIdAllocator,
)


class RingError(ValueError):
    """Raised for inconsistent ring states or unknown partitions."""


@dataclass(frozen=True)
class AvailabilityLevel:
    """An application's SLA tier, realised as one virtual ring.

    ``threshold`` is the minimum eq. 2 availability the ring's virtual
    nodes must maintain; ``target_replicas`` documents how many well-
    dispersed replicas meet it (2, 3 and 4 in the paper's evaluation).
    """

    threshold: float
    target_replicas: int

    def __post_init__(self) -> None:
        if self.threshold < 0:
            raise RingError(f"threshold must be >= 0, got {self.threshold}")
        if self.target_replicas < 1:
            raise RingError(
                f"target_replicas must be >= 1, got {self.target_replicas}"
            )


class VirtualRing:
    """One application's ring at one availability level.

    Partitions are stored sorted by the *end* token of their arc, which
    makes ``lookup`` a bisect: the owner of position p is the first arc
    whose end is >= p (with wraparound to arc 0).
    """

    def __init__(self, app_id: int, ring_id: int,
                 level: AvailabilityLevel,
                 partitions: List[Partition],
                 allocator: Optional[PartitionIdAllocator] = None) -> None:
        if not partitions:
            raise RingError("a ring needs at least one partition")
        ranges = [p.key_range for p in partitions]
        if not covers_ring(ranges):
            raise RingError("partitions must tile the ring exactly")
        for p in partitions:
            if p.pid.app_id != app_id or p.pid.ring_id != ring_id:
                raise RingError(
                    f"partition {p.pid} does not belong to ring "
                    f"({app_id}, {ring_id})"
                )
        self.app_id = app_id
        self.ring_id = ring_id
        self.level = level
        self._allocator = allocator or PartitionIdAllocator()
        self._partitions: Dict[PartitionId, Partition] = {}
        self._ordered: List[Partition] = []
        self._version = 0
        for p in partitions:
            self._partitions[p.pid] = p
        self._reindex()

    @property
    def version(self) -> int:
        """Monotone counter bumped whenever the partition set changes.

        Per-epoch consumers (the simulator's partition/app indexes, the
        ring set's flattened partition list) cache against this instead
        of re-walking the ring: only splits move it.
        """
        return self._version

    # -- indexing -----------------------------------------------------------

    def _sort_key(self, p: Partition) -> int:
        # Arc (start, end] is addressed by its end; a full-ring arc
        # (start == end) sorts by its nominal end as well.
        return p.key_range.end

    def _reindex(self) -> None:
        self._ordered = sorted(self._partitions.values(), key=self._sort_key)
        self._ends = [p.key_range.end for p in self._ordered]
        self._version += 1

    # -- accessors -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._partitions)

    def __iter__(self) -> Iterator[Partition]:
        return iter(self._ordered)

    def __contains__(self, pid: PartitionId) -> bool:
        return pid in self._partitions

    def partition(self, pid: PartitionId) -> Partition:
        try:
            return self._partitions[pid]
        except KeyError:
            raise RingError(f"unknown partition {pid}") from None

    def partitions(self) -> List[Partition]:
        return list(self._ordered)

    @property
    def total_size(self) -> int:
        return sum(p.size for p in self._ordered)

    @property
    def total_popularity(self) -> float:
        return sum(p.popularity for p in self._ordered)

    # -- lookup ---------------------------------------------------------------

    def lookup_position(self, position: int) -> Partition:
        """Owner of a ring position: first arc end >= position."""
        if not 0 <= position < RING_SIZE:
            raise RingError(f"position out of range: {position}")
        if len(self._ordered) == 1:
            return self._ordered[0]
        idx = bisect_left(self._ends, position)
        if idx == len(self._ends):
            idx = 0
        owner = self._ordered[idx]
        if not owner.key_range.contains_position(position):
            # position falls exactly on an arc start; it belongs to the
            # *previous* arc's end only when equal to it, otherwise this
            # indicates a broken tiling.
            raise RingError(
                f"tiling broken: {position} not in {owner.key_range}"
            )
        return owner

    def lookup(self, key: Key) -> Partition:
        """Partition owning ``key`` — the O(1)-hash + O(log M) DHT route."""
        return self.lookup_position(hash_key(key))

    # -- splits ----------------------------------------------------------------

    def split_partition(self, pid: PartitionId, *,
                        low_share: float = 0.5
                        ) -> Tuple[Partition, Partition]:
        """Replace an overfull partition by its two children.

        Returns (low, high).  The caller (replica catalog / simulator)
        is responsible for re-homing replicas of the parent.
        """
        parent = self.partition(pid)
        low_seq = self._allocator.next_seq(self.app_id, self.ring_id)
        high_seq = self._allocator.next_seq(self.app_id, self.ring_id)
        low, high = parent.split(low_seq, high_seq, low_share=low_share)
        del self._partitions[pid]
        self._partitions[low.pid] = low
        self._partitions[high.pid] = high
        self._reindex()
        return low, high

    def split_overfull(self) -> List[Tuple[Partition, Partition]]:
        """Split every partition above capacity; cascades until stable."""
        out: List[Tuple[Partition, Partition]] = []
        while True:
            victims = [p.pid for p in self._ordered if p.overfull]
            if not victims:
                return out
            for pid in victims:
                out.append(self.split_partition(pid))

    def check_invariants(self) -> None:
        """Raise unless the partitions tile the ring exactly."""
        if not covers_ring([p.key_range for p in self._ordered]):
            raise RingError(
                f"ring ({self.app_id}, {self.ring_id}) tiling broken"
            )


def build_ring(app_id: int, ring_id: int, level: AvailabilityLevel,
               num_partitions: int, *,
               partition_capacity: int = DEFAULT_PARTITION_CAPACITY,
               initial_size: int = 0,
               allocator: Optional[PartitionIdAllocator] = None
               ) -> VirtualRing:
    """Create a ring with ``num_partitions`` equal arcs (paper startup).

    ``initial_size`` bytes are assigned to every partition, modelling
    the pre-loaded application data of §III-A.
    """
    if num_partitions <= 0:
        raise RingError(f"num_partitions must be > 0, got {num_partitions}")
    if initial_size > partition_capacity:
        raise PartitionError(
            f"initial_size {initial_size} exceeds capacity "
            f"{partition_capacity}"
        )
    alloc = allocator or PartitionIdAllocator()
    step = RING_SIZE // num_partitions
    tokens = [((i + 1) * step) % RING_SIZE for i in range(num_partitions)]
    ranges = ranges_from_tokens(tokens)
    partitions = [
        Partition(
            pid=alloc.new_id(app_id, ring_id),
            key_range=key_range,
            size=initial_size,
            capacity=partition_capacity,
        )
        for key_range in ranges
    ]
    return VirtualRing(app_id, ring_id, level, partitions, allocator=alloc)


class RingSet:
    """All virtual rings of the cloud, keyed by (app_id, ring_id)."""

    def __init__(self) -> None:
        self._rings: Dict[Tuple[int, int], VirtualRing] = {}
        self._allocator = PartitionIdAllocator()
        self._flat_cache: Optional[List[Partition]] = None
        self._flat_versions: Optional[Tuple[int, ...]] = None

    def __len__(self) -> int:
        return len(self._rings)

    def versions(self) -> Tuple[int, ...]:
        """Per-ring version stamps, in ring insertion order.

        Changes exactly when a ring is added or any ring splits — the
        dirty flag for every flattened partition index downstream.
        """
        return tuple(ring.version for ring in self._rings.values())

    def __iter__(self) -> Iterator[VirtualRing]:
        return iter(self._rings.values())

    def add_ring(self, app_id: int, ring_id: int, level: AvailabilityLevel,
                 num_partitions: int, *,
                 partition_capacity: int = DEFAULT_PARTITION_CAPACITY,
                 initial_size: int = 0) -> VirtualRing:
        key = (app_id, ring_id)
        if key in self._rings:
            raise RingError(f"ring {key} already exists")
        ring = build_ring(
            app_id,
            ring_id,
            level,
            num_partitions,
            partition_capacity=partition_capacity,
            initial_size=initial_size,
            allocator=self._allocator,
        )
        self._rings[key] = ring
        return ring

    def ring(self, app_id: int, ring_id: int) -> VirtualRing:
        try:
            return self._rings[(app_id, ring_id)]
        except KeyError:
            raise RingError(f"unknown ring ({app_id}, {ring_id})") from None

    def ring_of(self, pid: PartitionId) -> VirtualRing:
        return self.ring(pid.app_id, pid.ring_id)

    def partition(self, pid: PartitionId) -> Partition:
        return self.ring_of(pid).partition(pid)

    def all_partitions(self) -> List[Partition]:
        """Every partition of every ring, cached behind the ring versions.

        The simulator consults this each epoch (insert routing, seeding,
        popularity); rebuilding the flattened list only when a split or
        a new ring actually changed the partition set keeps the steady
        state allocation-free.  Callers receive a fresh copy so the
        cache cannot be mutated from outside.
        """
        versions = self.versions()
        if self._flat_cache is None or self._flat_versions != versions:
            self._flat_cache = [
                p for ring in self._rings.values() for p in ring
            ]
            self._flat_versions = versions
        return list(self._flat_cache)

    @property
    def total_size(self) -> int:
        return sum(ring.total_size for ring in self._rings.values())
