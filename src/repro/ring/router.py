"""Request router: key → virtual ring → partition → serving replica.

Thin coordination layer used by clients (and the workload generator) to
resolve where a query executes.  The router prefers the geographically
closest live replica, which realises the paper's network-proximity goal
(§II-B): data mostly accessed from a region should be served from — and
eventually migrate to — that region.

Since ISSUE 7 the router routes on the *believed* membership view
(``membership`` parameter, lint-sealed against direct ``Cloud.alive``
reads): a real deployment's router only knows what its failure
detector tells it, so ghosts are routable (the caller's contact will
time out) and false suspects are not (their data is skipped).  The
default :class:`~repro.net.membership.OracleMembership` reproduces the
pre-seam physical behavior exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.cluster.location import Location, diversity
from repro.cluster.topology import Cloud
from repro.net.membership import OracleMembership
from repro.ring.hashing import Key
from repro.ring.partition import Partition, PartitionId
from repro.ring.virtualring import RingSet
from repro.store.replica import ReplicaCatalog


class RoutingError(LookupError):
    """Raised when a key cannot be resolved to a live replica."""


@dataclass(frozen=True)
class Route:
    """A resolved query route."""

    pid: PartitionId
    server_id: int
    distance: int

    def __str__(self) -> str:
        return f"{self.pid} -> s{self.server_id} (d={self.distance})"


class Router:
    """Resolves keys to replicas over the current catalog state."""

    def __init__(self, cloud: Cloud, rings: RingSet,
                 catalog: ReplicaCatalog, *,
                 membership=None) -> None:
        self._cloud = cloud
        self._rings = rings
        self._catalog = catalog
        self._membership = (
            membership if membership is not None else OracleMembership(cloud)
        )

    def partition_of(self, app_id: int, ring_id: int, key: Key) -> Partition:
        return self._rings.ring(app_id, ring_id).lookup(key)

    def live_replicas(self, pid: PartitionId) -> List[int]:
        """Believed-live replica servers (routing acts on belief)."""
        believed = self._membership.believed
        return [
            sid for sid in self._catalog.servers_of(pid) if believed(sid)
        ]

    def route(self, app_id: int, ring_id: int, key: Key,
              *, client: Optional[Location] = None) -> Route:
        """Resolve a query to the closest live replica of its partition."""
        partition = self.partition_of(app_id, ring_id, key)
        return self.route_partition(partition.pid, client=client)

    def route_partition(self, pid: PartitionId,
                        *, client: Optional[Location] = None) -> Route:
        """Resolve a query already attributed to a partition.

        Ties are pinned: among equally-close believed-live replicas the
        *lowest server id* wins.  Catalog iteration order depends on
        placement history (and may differ between kernels), so serving
        traffic routed here must not inherit it — the tie-break keeps
        replay byte-deterministic across runs and kernels.
        """
        replicas = self.live_replicas(pid)
        if not replicas:
            raise RoutingError(f"no live replica for {pid}")
        if client is None:
            return Route(pid, min(replicas), 0)
        best_sid, best_d = replicas[0], diversity(
            client, self._cloud.server(replicas[0]).location
        )
        for sid in replicas[1:]:
            d = diversity(client, self._cloud.server(sid).location)
            if d < best_d or (d == best_d and sid < best_sid):
                best_sid, best_d = sid, d
        return Route(pid, best_sid, best_d)

    def spread(self, pid: PartitionId,
               weights: Optional[List[Tuple[Location, float]]] = None
               ) -> List[Tuple[int, float]]:
        """Share of a partition's queries each live replica attracts.

        With no client geography every replica gets an equal share; with
        weighted client locations each location's share goes to its
        closest replica.  Used by the simulator to charge query load to
        servers without routing every query object individually.
        """
        replicas = self.live_replicas(pid)
        if not replicas:
            raise RoutingError(f"no live replica for {pid}")
        if not weights:
            share = 1.0 / len(replicas)
            return [(sid, share) for sid in replicas]
        totals = {sid: 0.0 for sid in replicas}
        grand = 0.0
        for client, weight in weights:
            if weight <= 0:
                continue
            # Same tie-break as route_partition: equal diversity goes
            # to the lowest server id, never to catalog order.
            best = min(
                replicas,
                key=lambda sid: (
                    diversity(client, self._cloud.server(sid).location),
                    sid,
                ),
            )
            totals[best] += weight
            grand += weight
        if grand == 0:
            share = 1.0 / len(replicas)
            return [(sid, share) for sid in replicas]
        return [(sid, w / grand) for sid, w in totals.items()]
