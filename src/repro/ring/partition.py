"""Data partitions: the unit of replication, migration and accounting.

A partition owns one :class:`~repro.ring.keyspace.KeyRange` of one
virtual ring and carries the byte size of the data stored under that
range.  When the size exceeds the ring's partition capacity (256 MB in
the paper) the partition splits into two children covering half the arc
each; the split conserves bytes and popularity.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from repro.cluster.server import MB
from repro.ring.keyspace import KeyRange

#: Paper §III-A: maximum partition capacity before a split.
DEFAULT_PARTITION_CAPACITY: int = 256 * MB


class PartitionError(ValueError):
    """Raised for invalid partition operations."""


@dataclass(frozen=True, order=True)
class PartitionId:
    """Globally unique partition identity.

    ``app_id`` and ``ring_id`` locate the virtual ring (one ring per
    application availability level); ``seq`` distinguishes partitions
    within the ring and is never reused, so children of a split get
    fresh ids and metrics stay unambiguous.
    """

    app_id: int
    ring_id: int
    seq: int

    def __post_init__(self) -> None:
        # Partition ids key every hot-path dict (replica catalog, load
        # map, agent registry, availability cache) and are hashed
        # millions of times per run; precomputing the hash beats the
        # generated tuple-hash by a constant that shows up in profiles.
        object.__setattr__(
            self, "_hash", hash((self.app_id, self.ring_id, self.seq))
        )

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        return f"p{self.app_id}.{self.ring_id}.{self.seq}"


@dataclass
class Partition:
    """One key-range of data for one application's virtual ring.

    ``size`` is the byte size of the primary copy (each replica stores
    the same bytes); ``popularity`` is the partition's share weight in
    the query distribution, maintained by the workload layer.
    """

    pid: PartitionId
    key_range: KeyRange
    size: int = 0
    popularity: float = 0.0
    capacity: int = DEFAULT_PARTITION_CAPACITY
    parent: Optional[PartitionId] = None

    def __post_init__(self) -> None:
        if self.size < 0:
            raise PartitionError(f"size must be >= 0, got {self.size}")
        if self.popularity < 0:
            raise PartitionError(
                f"popularity must be >= 0, got {self.popularity}"
            )
        if self.capacity <= 0:
            raise PartitionError(
                f"capacity must be > 0, got {self.capacity}"
            )

    @property
    def overfull(self) -> bool:
        """True when the partition must split before absorbing more data."""
        return self.size > self.capacity

    @property
    def fill_fraction(self) -> float:
        return self.size / self.capacity

    def grow(self, nbytes: int) -> None:
        """Add inserted bytes to the partition."""
        if nbytes < 0:
            raise PartitionError(f"cannot grow by negative bytes: {nbytes}")
        self.size += nbytes

    def shrink(self, nbytes: int) -> None:
        """Remove deleted bytes from the partition."""
        if not 0 <= nbytes <= self.size:
            raise PartitionError(
                f"cannot shrink by {nbytes}, size is {self.size}"
            )
        self.size -= nbytes

    def split(self, low_seq: int, high_seq: int, *,
              low_share: float = 0.5) -> Tuple["Partition", "Partition"]:
        """Split into two children halving the key range.

        ``low_share`` is the fraction of bytes (and popularity) that
        lands in the low half — 0.5 for uniformly hashed keys, but the
        caller may pass the measured share.  Bytes and popularity are
        conserved exactly: the high child receives the remainders.
        """
        if not 0.0 <= low_share <= 1.0:
            raise PartitionError(
                f"low_share must be in [0, 1], got {low_share}"
            )
        low_range, high_range = self.key_range.split()
        low_size = int(self.size * low_share)
        low_pop = self.popularity * low_share
        low = Partition(
            pid=replace(self.pid, seq=low_seq),
            key_range=low_range,
            size=low_size,
            popularity=low_pop,
            capacity=self.capacity,
            parent=self.pid,
        )
        high = Partition(
            pid=replace(self.pid, seq=high_seq),
            key_range=high_range,
            size=self.size - low_size,
            popularity=self.popularity - low_pop,
            capacity=self.capacity,
            parent=self.pid,
        )
        return low, high

    def __str__(self) -> str:
        return (
            f"{self.pid}[{self.key_range}] size={self.size} "
            f"pop={self.popularity:.4g}"
        )


class PartitionIndex:
    """Dense, never-reused integer slots for partition ids.

    The 100×-scale epoch kernel keeps per-partition state (query
    counts, eq. 2 availability, replica counts) in flat numpy vectors
    instead of ``PartitionId``-keyed dicts; this index is the shared
    slot space those vectors are addressed in.  Slots are handed out on
    first sight and never reassigned — a partition that leaves the
    catalog (split parent, lost data) keeps its slot, whose vector
    entries simply decay to the "absent" value (0) — so index arrays
    cached by consumers stay valid as the population grows.
    """

    __slots__ = ("_slots",)

    def __init__(self) -> None:
        self._slots: Dict[PartitionId, int] = {}

    def __len__(self) -> int:
        return len(self._slots)

    def __contains__(self, pid: PartitionId) -> bool:
        return pid in self._slots

    def slot_of(self, pid: PartitionId) -> int:
        """The partition's dense slot, assigned on first sight."""
        slot = self._slots.get(pid)
        if slot is None:
            slot = len(self._slots)
            self._slots[pid] = slot
        return slot

    def get(self, pid: PartitionId) -> Optional[int]:
        """The partition's slot, or None when it was never indexed."""
        return self._slots.get(pid)

    def items(self):
        """(pid, slot) pairs in assignment order."""
        return self._slots.items()

    def slots_of(self, pids: Iterable[PartitionId]) -> np.ndarray:
        """Slots for ``pids`` in order (assigning fresh ones as needed).

        Callers cache the returned array against the identity of their
        ``pids`` container — slots never change once assigned, so the
        array stays valid until the pid list itself is rebuilt.
        """
        slot_of = self.slot_of
        pids = list(pids)
        return np.fromiter(
            (slot_of(pid) for pid in pids), dtype=np.intp, count=len(pids)
        )


def _gather(values: np.ndarray, slots: np.ndarray, fill,
            empty_dtype) -> np.ndarray:
    """``values[slots]`` with out-of-range slots reading as ``fill``.

    Per-partition vectors trail the :class:`PartitionIndex` they are
    addressed in: a consumer holding slots assigned *after* a vector was
    built (a split child indexed mid-epoch) must read the "absent"
    value for them, exactly as the dict-backed path's ``.get(pid,
    fill)`` did.  Negative slots (the codebase's "unknown" sentinel)
    read as ``fill`` too.
    """
    if not values.size:
        return np.full(len(slots), fill, dtype=empty_dtype)
    out = values[np.clip(slots, 0, values.size - 1)]
    oob = (slots < 0) | (slots >= values.size)
    if oob.any():
        out[oob] = fill
    return out


def gather_int(values: np.ndarray, slots: np.ndarray,
               fill: int = 0) -> np.ndarray:
    """Integer clip-and-fill gather (see :func:`_gather`)."""
    return _gather(values, slots, fill, values.dtype)


def gather_float(values: np.ndarray, slots: np.ndarray,
                 fill: float = 0.0) -> np.ndarray:
    """Float clip-and-fill gather (see :func:`_gather`)."""
    return _gather(values, slots, fill, np.float64)


class PartitionIdAllocator:
    """Hands out never-reused sequence numbers per (app, ring)."""

    def __init__(self) -> None:
        self._counters: dict = {}

    def next_seq(self, app_id: int, ring_id: int) -> int:
        key = (app_id, ring_id)
        counter = self._counters.setdefault(key, itertools.count())
        return next(counter)

    def new_id(self, app_id: int, ring_id: int) -> PartitionId:
        return PartitionId(app_id, ring_id, self.next_seq(app_id, ring_id))
