"""Data partitions: the unit of replication, migration and accounting.

A partition owns one :class:`~repro.ring.keyspace.KeyRange` of one
virtual ring and carries the byte size of the data stored under that
range.  When the size exceeds the ring's partition capacity (256 MB in
the paper) the partition splits into two children covering half the arc
each; the split conserves bytes and popularity.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.cluster.server import MB
from repro.ring.keyspace import KeyRange

#: Paper §III-A: maximum partition capacity before a split.
DEFAULT_PARTITION_CAPACITY: int = 256 * MB


class PartitionError(ValueError):
    """Raised for invalid partition operations."""


@dataclass(frozen=True, order=True)
class PartitionId:
    """Globally unique partition identity.

    ``app_id`` and ``ring_id`` locate the virtual ring (one ring per
    application availability level); ``seq`` distinguishes partitions
    within the ring and is never reused, so children of a split get
    fresh ids and metrics stay unambiguous.
    """

    app_id: int
    ring_id: int
    seq: int

    def __post_init__(self) -> None:
        # Partition ids key every hot-path dict (replica catalog, load
        # map, agent registry, availability cache) and are hashed
        # millions of times per run; precomputing the hash beats the
        # generated tuple-hash by a constant that shows up in profiles.
        object.__setattr__(
            self, "_hash", hash((self.app_id, self.ring_id, self.seq))
        )

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        return f"p{self.app_id}.{self.ring_id}.{self.seq}"


@dataclass
class Partition:
    """One key-range of data for one application's virtual ring.

    ``size`` is the byte size of the primary copy (each replica stores
    the same bytes); ``popularity`` is the partition's share weight in
    the query distribution, maintained by the workload layer.
    """

    pid: PartitionId
    key_range: KeyRange
    size: int = 0
    popularity: float = 0.0
    capacity: int = DEFAULT_PARTITION_CAPACITY
    parent: Optional[PartitionId] = None

    def __post_init__(self) -> None:
        if self.size < 0:
            raise PartitionError(f"size must be >= 0, got {self.size}")
        if self.popularity < 0:
            raise PartitionError(
                f"popularity must be >= 0, got {self.popularity}"
            )
        if self.capacity <= 0:
            raise PartitionError(
                f"capacity must be > 0, got {self.capacity}"
            )

    @property
    def overfull(self) -> bool:
        """True when the partition must split before absorbing more data."""
        return self.size > self.capacity

    @property
    def fill_fraction(self) -> float:
        return self.size / self.capacity

    def grow(self, nbytes: int) -> None:
        """Add inserted bytes to the partition."""
        if nbytes < 0:
            raise PartitionError(f"cannot grow by negative bytes: {nbytes}")
        self.size += nbytes

    def shrink(self, nbytes: int) -> None:
        """Remove deleted bytes from the partition."""
        if not 0 <= nbytes <= self.size:
            raise PartitionError(
                f"cannot shrink by {nbytes}, size is {self.size}"
            )
        self.size -= nbytes

    def split(self, low_seq: int, high_seq: int, *,
              low_share: float = 0.5) -> Tuple["Partition", "Partition"]:
        """Split into two children halving the key range.

        ``low_share`` is the fraction of bytes (and popularity) that
        lands in the low half — 0.5 for uniformly hashed keys, but the
        caller may pass the measured share.  Bytes and popularity are
        conserved exactly: the high child receives the remainders.
        """
        if not 0.0 <= low_share <= 1.0:
            raise PartitionError(
                f"low_share must be in [0, 1], got {low_share}"
            )
        low_range, high_range = self.key_range.split()
        low_size = int(self.size * low_share)
        low_pop = self.popularity * low_share
        low = Partition(
            pid=replace(self.pid, seq=low_seq),
            key_range=low_range,
            size=low_size,
            popularity=low_pop,
            capacity=self.capacity,
            parent=self.pid,
        )
        high = Partition(
            pid=replace(self.pid, seq=high_seq),
            key_range=high_range,
            size=self.size - low_size,
            popularity=self.popularity - low_pop,
            capacity=self.capacity,
            parent=self.pid,
        )
        return low, high

    def __str__(self) -> str:
        return (
            f"{self.pid}[{self.key_range}] size={self.size} "
            f"pop={self.popularity:.4g}"
        )


class PartitionIdAllocator:
    """Hands out never-reused sequence numbers per (app, ring)."""

    def __init__(self) -> None:
        self._counters: dict = {}

    def next_seq(self, app_id: int, ring_id: int) -> int:
        key = (app_id, ring_id)
        counter = self._counters.setdefault(key, itertools.count())
        return next(counter)

    def new_id(self, app_id: int, ring_id: int) -> PartitionId:
        return PartitionId(app_id, ring_id, self.next_seq(app_id, ring_id))
