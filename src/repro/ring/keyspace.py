"""Key ranges: half-open arcs of the hash ring owned by partitions.

A virtual node with token t owns keys hashing into (previous token, t]
(paper §I, following Dynamo).  :class:`KeyRange` models that arc with
wraparound, supports membership tests, splitting and adjacency checks,
and is the unit the partition layer builds on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.ring.hashing import (
    RING_SIZE,
    Key,
    hash_key,
    in_range,
    midpoint,
    ring_distance,
)


class KeyRangeError(ValueError):
    """Raised for invalid range operations."""


@dataclass(frozen=True)
class KeyRange:
    """The half-open arc (start, end] on the 64-bit ring.

    ``start == end`` denotes the full ring (the arc wraps all the way
    around), which is the range of a ring with a single partition.
    """

    start: int
    end: int

    def __post_init__(self) -> None:
        if not 0 <= self.start < RING_SIZE:
            raise KeyRangeError(f"start out of range: {self.start}")
        if not 0 <= self.end < RING_SIZE:
            raise KeyRangeError(f"end out of range: {self.end}")

    @property
    def span(self) -> int:
        """Number of ring positions covered (full ring when start==end)."""
        d = ring_distance(self.start, self.end)
        return RING_SIZE if d == 0 else d

    @property
    def fraction(self) -> float:
        """Share of the whole ring this arc covers, in (0, 1]."""
        return self.span / RING_SIZE

    def contains_position(self, position: int) -> bool:
        return in_range(position, self.start, self.end)

    def contains_key(self, key: Key) -> bool:
        return self.contains_position(hash_key(key))

    def split(self) -> Tuple["KeyRange", "KeyRange"]:
        """Split at the arc midpoint into two adjacent half-arcs.

        The paper splits a partition once it exceeds its 256 MB capacity;
        the low half keeps (start, mid], the high half takes (mid, end].
        """
        if self.span < 2:
            raise KeyRangeError(f"range too small to split: {self}")
        mid = midpoint(self.start, self.end)
        return KeyRange(self.start, mid), KeyRange(mid, self.end)

    def is_adjacent_before(self, other: "KeyRange") -> bool:
        """True when this arc ends exactly where ``other`` begins."""
        return self.end == other.start

    def merge(self, other: "KeyRange") -> "KeyRange":
        """Merge with the adjacent following arc (inverse of split)."""
        if not self.is_adjacent_before(other):
            raise KeyRangeError(f"{self} is not adjacent before {other}")
        if self.span + other.span > RING_SIZE:
            raise KeyRangeError("merged arc would exceed the ring")
        merged_span = self.span + other.span
        if merged_span == RING_SIZE:
            return KeyRange(self.start, self.start)
        return KeyRange(self.start, other.end)

    def __str__(self) -> str:
        return f"({self.start:#x}, {self.end:#x}]"


def full_ring() -> KeyRange:
    """The degenerate arc covering every position."""
    return KeyRange(0, 0)


def ranges_from_tokens(tokens: List[int]) -> List[KeyRange]:
    """Partition the ring into arcs from a sorted unique token list.

    Arc i is (token[i-1], token[i]]; the first arc wraps from the last
    token.  A single token yields the full ring.
    """
    if not tokens:
        raise KeyRangeError("need at least one token")
    ordered = sorted(set(t % RING_SIZE for t in tokens))
    if len(ordered) != len(tokens):
        raise KeyRangeError("tokens must be unique")
    if len(ordered) == 1:
        t = ordered[0]
        return [KeyRange(t, t)]
    out = []
    for i, token in enumerate(ordered):
        prev = ordered[i - 1]
        out.append(KeyRange(prev, token))
    return out


def covers_ring(ranges: List[KeyRange]) -> bool:
    """Check that a set of arcs tiles the whole ring with no gap/overlap.

    This is the structural invariant every virtual ring maintains across
    partition splits; the property tests lean on it heavily.
    """
    if not ranges:
        return False
    if len(ranges) == 1:
        return ranges[0].span == RING_SIZE
    ordered = sorted(ranges, key=lambda r: r.start)
    total = 0
    for i, rng in enumerate(ordered):
        nxt = ordered[(i + 1) % len(ordered)]
        if rng.end != nxt.start:
            return False
        total += rng.span
    return total == RING_SIZE
