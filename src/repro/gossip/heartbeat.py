"""Gossip-style heartbeats and failure detection.

The paper's protocol needs two pieces of shared knowledge without any
global coordinator (§II): who is alive (so virtual nodes stop counting
replicas on dead servers) and the current price table (posted at "a
board, i.e. an elected server").  Both ride on a round-based push
gossip: every round each live node picks ``fanout`` random peers and
sends its state; messages are lost independently with probability
``loss``.

:class:`FailureDetector` implements the classic heartbeat scheme on
top: every node keeps, per peer, the freshest heartbeat counter it has
heard (directly or transitively) and the round it heard it; a peer
unheard-of for ``suspect_rounds`` rounds is suspected, and declared
dead after ``dead_rounds``.  The simulator's epochs are far longer
than a gossip round, which is what justifies the engine's instant
failure detection — quantified by the membership bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np


class GossipError(ValueError):
    """Raised for invalid gossip parameters."""


def _default_gossip_rng() -> np.random.Generator:
    """Seed-0 ``gossip`` spawn stream from :class:`RngStreams`.

    Standalone gossip components used to default to a bare
    ``default_rng(0)``; deriving the default from the same spawn-stream
    family the simulator uses keeps a standalone detector's draws
    independent of every other stream at the same master seed (and of
    any future stream appended after ``gossip``).  Imported lazily —
    ``repro.sim`` pulls in the core packages at import time and the
    gossip substrate must stay importable on its own.
    """
    from repro.sim.seeds import RngStreams

    return RngStreams(0).gossip


@dataclass(frozen=True)
class GossipConfig:
    """Round-based push-gossip parameters."""

    fanout: int = 3
    loss: float = 0.0
    suspect_rounds: int = 4
    dead_rounds: int = 10

    def __post_init__(self) -> None:
        if self.fanout < 1:
            raise GossipError(f"fanout must be >= 1, got {self.fanout}")
        if not 0.0 <= self.loss < 1.0:
            raise GossipError(f"loss must be in [0, 1), got {self.loss}")
        if self.suspect_rounds < 1:
            raise GossipError(
                f"suspect_rounds must be >= 1, got {self.suspect_rounds}"
            )
        if self.dead_rounds <= self.suspect_rounds:
            raise GossipError(
                "dead_rounds must exceed suspect_rounds"
            )


#: Peer states as seen by one node's detector.
ALIVE, SUSPECT, DEAD = "alive", "suspect", "dead"


@dataclass
class PeerRecord:
    """Freshest knowledge one node has about one peer."""

    heartbeat: int = 0
    heard_round: int = 0


class FailureDetector:
    """Per-node heartbeat tables updated by a shared gossip fabric."""

    def __init__(self, node_ids: Sequence[int], config: GossipConfig,
                 rng: Optional[np.random.Generator] = None) -> None:
        if len(set(node_ids)) != len(node_ids):
            raise GossipError("node ids must be unique")
        if not node_ids:
            raise GossipError("need at least one node")
        self.config = config
        self._rng = rng if rng is not None else _default_gossip_rng()
        self._nodes: List[int] = list(node_ids)
        self._crashed: Set[int] = set()
        self._round = 0
        self._heartbeat: Dict[int, int] = {n: 0 for n in node_ids}
        # tables[a][b] = what a knows about b.
        self.tables: Dict[int, Dict[int, PeerRecord]] = {
            a: {b: PeerRecord() for b in node_ids if b != a}
            for a in node_ids
        }

    @property
    def round(self) -> int:
        return self._round

    @property
    def node_ids(self) -> List[int]:
        return list(self._nodes)

    def live_nodes(self) -> List[int]:
        return [n for n in self._nodes if n not in self._crashed]

    def crash(self, node_id: int) -> None:
        """The node stops heartbeating (its table freezes)."""
        if node_id not in self._heartbeat:
            raise GossipError(f"unknown node {node_id}")
        self._crashed.add(node_id)

    def recover(self, node_id: int) -> None:
        if node_id not in self._heartbeat:
            raise GossipError(f"unknown node {node_id}")
        self._crashed.discard(node_id)

    # -- the gossip round ----------------------------------------------------

    def step(self) -> None:
        """One synchronous gossip round."""
        self._round += 1
        for node in self.live_nodes():
            self._heartbeat[node] += 1
        # Each live node pushes its full table (plus its own counter)
        # to ``fanout`` random peers.
        updates: List[Tuple[int, Dict[int, int]]] = []
        for sender in self.live_nodes():
            view = {n: r.heartbeat for n, r in self.tables[sender].items()}
            view[sender] = self._heartbeat[sender]
            peers = [n for n in self._nodes if n != sender]
            if not peers:
                continue
            k = min(self.config.fanout, len(peers))
            chosen = self._rng.choice(len(peers), size=k, replace=False)
            for idx in chosen:
                if self._rng.random() < self.config.loss:
                    continue
                updates.append((peers[idx], view))
        for receiver, view in updates:
            if receiver in self._crashed:
                continue
            table = self.tables[receiver]
            for node, beat in view.items():
                if node == receiver:
                    continue
                record = table[node]
                if beat > record.heartbeat:
                    record.heartbeat = beat
                    record.heard_round = self._round

    def run(self, rounds: int) -> None:
        for __ in range(rounds):
            self.step()

    # -- verdicts ----------------------------------------------------------------

    def status(self, observer: int, peer: int) -> str:
        """``observer``'s verdict about ``peer``."""
        if observer == peer:
            return ALIVE
        record = self.tables[observer][peer]
        silence = self._round - record.heard_round
        if silence >= self.config.dead_rounds:
            return DEAD
        if silence >= self.config.suspect_rounds:
            return SUSPECT
        return ALIVE

    def view(self, observer: int) -> Dict[int, str]:
        """Complete membership view of one node."""
        return {
            peer: self.status(observer, peer)
            for peer in self._nodes
            if peer != observer
        }

    def detected_by_all(self, peer: int) -> bool:
        """True when every live node considers ``peer`` dead."""
        return all(
            self.status(observer, peer) == DEAD
            for observer in self.live_nodes()
        )

    def detection_round(self, peer: int, max_rounds: int = 100) -> int:
        """Rounds until every live node declares ``peer`` dead.

        Steps the fabric forward; intended for measurement harnesses.
        """
        for extra in range(max_rounds + 1):
            if self.detected_by_all(peer):
                return extra
            self.step()
        raise GossipError(
            f"{peer} not detected within {max_rounds} rounds"
        )
