"""Gossip substrate: heartbeats, versioned dissemination, board election.

The decentralised machinery the paper assumes (§II): failure detection
without a coordinator, the price table spreading from the elected board
server, and the election itself.  The simulator's epochs treat these as
instantaneous; `benchmarks/test_membership.py` quantifies why that is
justified (detection and dissemination complete in O(log N) gossip
rounds, orders of magnitude below an epoch).
"""

from repro.gossip.dissemination import VersionedGossip, VersionRecord
from repro.gossip.election import BoardElection, ElectionView
from repro.gossip.heartbeat import (
    ALIVE,
    DEAD,
    SUSPECT,
    FailureDetector,
    GossipConfig,
    GossipError,
    PeerRecord,
)

__all__ = [
    "ALIVE",
    "BoardElection",
    "DEAD",
    "ElectionView",
    "FailureDetector",
    "GossipConfig",
    "GossipError",
    "PeerRecord",
    "SUSPECT",
    "VersionRecord",
    "VersionedGossip",
]
