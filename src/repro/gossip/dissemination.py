"""Epidemic dissemination of versioned values (the price table).

The virtual rent table is "announced at a board ... and is updated at
the beginning of a new epoch" (§II).  Between the board and 200
servers, the natural transport is push gossip: the board injects a new
version each epoch, every informed node pushes it to ``fanout`` random
peers per round, and coverage reaches all N nodes in O(log N) rounds.
:class:`VersionedGossip` models exactly that, so the staleness every
server decides on is measurable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from repro.gossip.heartbeat import (
    GossipConfig,
    GossipError,
    _default_gossip_rng,
)


@dataclass
class VersionRecord:
    """What one node currently holds."""

    version: int = -1
    received_round: int = -1


class VersionedGossip:
    """Push-gossip spread of a monotonically versioned value."""

    def __init__(self, node_ids: Sequence[int], config: GossipConfig,
                 rng: Optional[np.random.Generator] = None) -> None:
        if not node_ids:
            raise GossipError("need at least one node")
        if len(set(node_ids)) != len(node_ids):
            raise GossipError("node ids must be unique")
        self.config = config
        self._rng = rng if rng is not None else _default_gossip_rng()
        self._nodes: List[int] = list(node_ids)
        self._crashed: Set[int] = set()
        self._round = 0
        self.records: Dict[int, VersionRecord] = {
            n: VersionRecord() for n in node_ids
        }

    @property
    def round(self) -> int:
        return self._round

    def crash(self, node_id: int) -> None:
        if node_id not in self.records:
            raise GossipError(f"unknown node {node_id}")
        self._crashed.add(node_id)

    def live_nodes(self) -> List[int]:
        return [n for n in self._nodes if n not in self._crashed]

    def publish(self, origin: int, version: int) -> None:
        """The board injects a new version at ``origin``."""
        if origin not in self.records:
            raise GossipError(f"unknown node {origin}")
        if origin in self._crashed:
            raise GossipError(f"origin {origin} is crashed")
        record = self.records[origin]
        if version <= record.version:
            raise GossipError(
                f"version must increase: {version} <= {record.version}"
            )
        record.version = version
        record.received_round = self._round

    def step(self) -> None:
        """One synchronous push round."""
        self._round += 1
        pushes: List[tuple] = []
        for sender in self.live_nodes():
            record = self.records[sender]
            if record.version < 0:
                continue
            peers = [n for n in self._nodes if n != sender]
            if not peers:
                continue
            k = min(self.config.fanout, len(peers))
            chosen = self._rng.choice(len(peers), size=k, replace=False)
            for idx in chosen:
                if self._rng.random() < self.config.loss:
                    continue
                pushes.append((peers[idx], record.version))
        for receiver, version in pushes:
            if receiver in self._crashed:
                continue
            record = self.records[receiver]
            if version > record.version:
                record.version = version
                record.received_round = self._round

    def coverage(self, version: int) -> float:
        """Fraction of live nodes holding at least ``version``."""
        live = self.live_nodes()
        if not live:
            return 0.0
        holders = sum(
            1 for n in live if self.records[n].version >= version
        )
        return holders / len(live)

    def rounds_to_coverage(self, version: int, target: float = 1.0,
                           max_rounds: int = 200) -> int:
        """Steps until ``target`` coverage of ``version`` is reached."""
        if not 0.0 < target <= 1.0:
            raise GossipError(f"target must be in (0, 1], got {target}")
        for extra in range(max_rounds + 1):
            if self.coverage(version) >= target:
                return extra
            self.step()
        raise GossipError(
            f"coverage {target} not reached within {max_rounds} rounds"
        )

    def staleness(self, node_id: int, current_version: int) -> int:
        """How many versions behind one node is."""
        record = self.records[node_id]
        if record.version < 0:
            return current_version + 1
        return max(current_version - record.version, 0)
