"""Board election on top of the failure detector.

The price board lives on "an elected server" (§II).  With a membership
view at every node, the election can be deterministic: every node
nominates the smallest server id it currently believes alive, so no
extra message rounds are needed and agreement follows from view
agreement.  Disagreement windows exist only while a board crash is
propagating through the detector — their length is what the membership
bench measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.gossip.heartbeat import ALIVE, FailureDetector, GossipError


@dataclass(frozen=True)
class ElectionView:
    """One snapshot of who believes whom to be the board."""

    choices: Dict[int, int]

    @property
    def agreed(self) -> bool:
        return len(set(self.choices.values())) == 1

    @property
    def board(self) -> Optional[int]:
        """The agreed board, or None during a disagreement window."""
        winners = set(self.choices.values())
        return winners.pop() if len(winners) == 1 else None


class BoardElection:
    """Deterministic lowest-live-id election over detector views."""

    def __init__(self, detector: FailureDetector) -> None:
        self._detector = detector

    def nominate(self, observer: int) -> int:
        """The board in ``observer``'s current view (may be itself)."""
        candidates = [observer]
        for peer, status in self._detector.view(observer).items():
            if status == ALIVE:
                candidates.append(peer)
        return min(candidates)

    def snapshot(self) -> ElectionView:
        """Every live node's current nomination."""
        live = self._detector.live_nodes()
        if not live:
            raise GossipError("no live nodes to elect a board")
        return ElectionView(
            choices={node: self.nominate(node) for node in live}
        )

    def rounds_to_agreement(self, max_rounds: int = 200) -> int:
        """Gossip rounds until all live nodes agree on a *live* board.

        Right after a board crash the cluster still "agrees" on the
        dead board (stale views); that does not count — the clock stops
        only when the common nomination is actually alive.
        """
        live = set(self._detector.live_nodes())
        for extra in range(max_rounds + 1):
            view = self.snapshot()
            if view.agreed and view.board in live:
                return extra
            self._detector.step()
        raise GossipError(
            f"no agreement within {max_rounds} rounds"
        )
