"""The discrete-epoch simulator tying every subsystem together.

One epoch proceeds exactly as the paper's model (§III-A) prescribes:

1. cloud events (arrivals/failures) fire and lost replicas disappear;
2. every server posts its eq. 1 virtual rent for the epoch, computed
   from the previous epoch's query load and its current storage usage;
3. bandwidth budgets and query counters reset;
4. the workload mix draws the epoch's queries and routes them to the
   partitions' live replicas; agents settle their eq. 5 balances;
5. every virtual node runs the §II-C decision process (replicate /
   migrate / suicide / nothing) with transfers debited against the
   replication and migration budgets;
6. the insert stream (if configured) grows partitions, failing inserts
   that no replica server can absorb;
7. overfull partitions split; 8. metrics are collected.

The decision logic is pluggable via ``decider_factory`` so the baseline
policies (static, random) run under the identical substrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.events import EventSchedule
from repro.cluster.server import BandwidthBudget
from repro.cluster.topology import Cloud, build_cloud
from repro.core.agent import AgentRegistry
from repro.core.availability import AvailabilityIndex, availability
from repro.core.board import PriceBoard, update_board
from repro.core.decision import DecisionEngine, DecisionStats, EconomicPolicy
from repro.core.economy import CloudCostIndex, UsageTracker
from repro.core.placement import proximity_weights
from repro.net.membership import MembershipService, OracleMembership
from repro.ring.partition import PartitionId, PartitionIndex
from repro.ring.virtualring import AvailabilityLevel, RingError, RingSet
from repro.sim.config import SimConfig
from repro.sim.metrics import (
    ControlPlaneFrame,
    EpochFrame,
    MetricsLog,
    RobustnessLog,
    ServerVnodeHistogram,
    ServingLog,
)
from repro.sim.seeds import RngStreams
from repro.serve.frontend import ServingFrontEnd
from repro.store.dataplane import DataPlane
from repro.store.replica import ReplicaCatalog
from repro.store.transfer import (
    NETWORK_OUTCOMES,
    RetryQueue,
    TransferEngine,
    TransferKind,
)
from repro.workload.clients import uniform_over_countries
from repro.workload.inserts import InsertOutcome, InsertWorkload
from repro.workload.mix import ApplicationSpec, EpochLoad, WorkloadMix
from repro.workload.popularity import PopularityMap


class SimulationError(RuntimeError):
    """Raised for inconsistent simulator usage."""


@dataclass
class SimContext:
    """Everything a decision policy needs to act on the cloud."""

    cloud: Cloud
    rings: RingSet
    catalog: ReplicaCatalog
    registry: AgentRegistry
    transfers: TransferEngine
    policy: EconomicPolicy
    rent_model: object = None
    kernel: str = "vectorized"
    avail_index: Optional[AvailabilityIndex] = None
    membership: object = None


DeciderFactory = Callable[[SimContext], object]


def economic_decider(ctx: SimContext) -> DecisionEngine:
    """The paper's policy — the default decider."""
    return DecisionEngine(
        ctx.cloud, ctx.rings, ctx.catalog, ctx.registry, ctx.transfers,
        ctx.policy, rent_model=ctx.rent_model,
        kernel=ctx.kernel, avail_index=ctx.avail_index,
        membership=ctx.membership,
    )


class Simulation:
    """A fully built scenario, steppable epoch by epoch."""

    def __init__(self, config: SimConfig, *,
                 events: Optional[EventSchedule] = None,
                 decider_factory: DeciderFactory = economic_decider) -> None:
        self.config = config
        self.streams = RngStreams(config.seed)
        self.cloud = build_cloud(
            config.layout,
            storage_capacity=config.server_storage,
            query_capacity=config.server_query_capacity,
            expensive_fraction=config.expensive_fraction,
            cheap_rent=config.cheap_rent,
            expensive_rent=config.expensive_rent,
            confidence=config.confidence,
            rng=self.streams.topology,
        )
        self._apply_budgets(self.cloud.server_ids)
        self.rings = RingSet()
        for app in config.apps:
            for ring_cfg in app.rings:
                self.rings.add_ring(
                    app.app_id,
                    ring_cfg.ring_id,
                    AvailabilityLevel(
                        threshold=ring_cfg.threshold,
                        target_replicas=ring_cfg.target_replicas,
                    ),
                    ring_cfg.partitions,
                    partition_capacity=ring_cfg.partition_capacity,
                    initial_size=ring_cfg.initial_partition_size,
                )
        self.catalog = ReplicaCatalog(self.cloud)
        # The incremental eq. 2 cache is shared by the decision engine
        # and metrics collection (scalar kernel: both fall back to the
        # O(R²) recomputation the reference implementation performs).
        # Its dense partition index is the shared slot space every
        # per-partition vector (query counts, availability, replica
        # counts) is addressed in.
        self.avail_index: Optional[AvailabilityIndex] = None
        self.partition_index: Optional[PartitionIndex] = None
        # Vectorized eq. 1: slot-ordered cost vectors maintained by the
        # catalog listener replace the per-server Python pricing loop.
        # (Usage-normalised pricing needs per-server trailing means and
        # stays on the scalar path.)
        self.cost_index: Optional[CloudCostIndex] = None
        if config.kernel == "vectorized":
            self.partition_index = PartitionIndex()
            self.avail_index = AvailabilityIndex(
                self.cloud, self.catalog, partitions=self.partition_index
            )
            if not config.rent_model.normalize_by_usage:
                self.cost_index = CloudCostIndex(
                    self.cloud, config.rent_model, self.catalog
                )
        self.registry = AgentRegistry(
            config.policy.hysteresis,
            partition_index=self.partition_index,
        )
        self.transfers = TransferEngine(self.cloud, self.catalog)
        # Faulty-network control plane (ISSUE 6).  ``config.net is
        # None`` leaves every seam below default-off: no membership
        # service, no reachability checks, no retry queue — the epoch
        # loop is byte-for-byte the pre-existing one.
        self.membership_service: Optional[MembershipService] = None
        self.retry_queue: Optional[RetryQueue] = None
        self.robustness: Optional[RobustnessLog] = None
        self._retry_skip: set = set()
        if config.net is not None:
            self.membership_service = MembershipService(
                config.net, self.cloud, self.streams,
                avail_index=self.avail_index, catalog=self.catalog,
            )
            self.transfers.set_reachability(
                self.membership_service.net.reachable
            )
            self.retry_queue = RetryQueue()
            self.robustness = RobustnessLog()
        self.board = PriceBoard()
        self.popularity = PopularityMap.pareto(
            [p.pid for p in self.rings.all_partitions()],
            shape=config.popularity_shape,
            scale=config.popularity_scale,
            rng=self.streams.popularity,
        )
        self.mix = WorkloadMix(
            [
                ApplicationSpec(
                    app_id=a.app_id,
                    name=a.name,
                    query_share=a.query_share,
                    geography=a.geography,
                )
                for a in config.apps
            ],
            config.rate_profile,
            self.streams.workload,
            partition_index=self.partition_index,
        )
        self.insert_workload: Optional[InsertWorkload] = None
        if config.inserts is not None:
            self.insert_workload = InsertWorkload(
                rate=config.inserts.rate,
                object_size=config.inserts.object_size,
                routing=config.inserts.routing,
                rng=self.streams.inserts,
            )
        self.events = events if events is not None else EventSchedule(
            [], layout=config.layout, rng=self.streams.events
        )
        self.context = SimContext(
            cloud=self.cloud,
            rings=self.rings,
            catalog=self.catalog,
            registry=self.registry,
            transfers=self.transfers,
            policy=config.policy,
            rent_model=config.rent_model,
            kernel=config.kernel,
            avail_index=self.avail_index,
            membership=self.membership_service,
        )
        self.decider = decider_factory(self.context)
        self.metrics = MetricsLog()
        # Usage-normalised pricing (§II-A: up derived from "the mean
        # usage of the server in the previous month") tracks a trailing
        # usage mean only when the rent model asks for it.
        self.usage_tracker: Optional[UsageTracker] = None
        if config.rent_model.normalize_by_usage:
            self.usage_tracker = UsageTracker(
                horizon=config.rent_model.epochs_per_month
            )
        self._g_of_app: Dict[int, Optional[np.ndarray]] = {}
        self._g_dirty = True
        self._pids_of_apps: Dict[int, List[PartitionId]] = {}
        self._pids_versions: Optional[Tuple[int, ...]] = None
        self._pids_of_rings: List[
            Tuple[Tuple[int, int], List[PartitionId], Optional[np.ndarray]]
        ] = []
        self._ring_pids_versions: Optional[Tuple[int, ...]] = None
        # Frame-histogram id tuple, shared across every epoch of one
        # cloud-membership version (the frame store keeps one reference,
        # not one tuple per epoch).
        self._hist_ids: Optional[Tuple[int, Tuple[int, ...]]] = None
        self._epoch = 0
        self._seed_placement()
        # Stale-view serving data plane (ISSUE 7).  Built after seed
        # placement so its catalog mirror only tracks changes from
        # here on; an observer overlay, so the EpochFrame stream is
        # unchanged whether or not it is enabled.
        self.data_plane: Optional[DataPlane] = None
        if config.data_plane is not None:
            if self.robustness is None:
                self.robustness = RobustnessLog()
            membership = (
                self.membership_service
                if self.membership_service is not None
                else OracleMembership(self.cloud)
            )
            self.data_plane = DataPlane(
                config.data_plane, self.cloud, self.rings, self.catalog,
                membership, rng=self.streams.dataplane,
                apps=[
                    (app.app_id, ring.ring_id)
                    for app in config.apps for ring in app.rings
                ],
            )
        # Live-serving front door (ISSUE 10).  Same observer-overlay
        # contract as the data plane: own store copies, own hints, own
        # RNG stream — the EpochFrame stream is byte-identical whether
        # serving is on or off.
        self.serving: Optional[ServingFrontEnd] = None
        self.serving_log: Optional[ServingLog] = None
        if config.serving is not None:
            membership = (
                self.membership_service
                if self.membership_service is not None
                else OracleMembership(self.cloud)
            )
            self.serving = ServingFrontEnd(
                config.serving, self.cloud, self.rings, self.catalog,
                membership, rng=self.streams.serving,
                apps=[
                    (app.app_id, ring.ring_id)
                    for app in config.apps for ring in app.rings
                ],
                # The front door needs client locations to cost the
                # client→coordinator hop; country sites match the
                # uniform geography the paper's workloads assume.
                sites=uniform_over_countries(config.layout).sites,
            )
            self.serving_log = ServingLog()

    # -- construction helpers ------------------------------------------------

    def _apply_budgets(self, server_ids: Sequence[int]) -> None:
        for sid in server_ids:
            server = self.cloud.server(sid)
            server.replication_budget = BandwidthBudget(
                self.config.replication_budget
            )
            server.migration_budget = BandwidthBudget(
                self.config.migration_budget
            )

    def _seed_placement(self) -> None:
        """Place one replica of each partition on a random server.

        The paper starts from an arbitrary assignment and lets the
        replication process converge (Fig. 2); a single random replica
        per partition is the weakest such start — agents must build all
        redundancy themselves.
        """
        rng = self.streams.topology
        ids = self.cloud.server_ids
        for partition in self.rings.all_partitions():
            order = rng.permutation(len(ids))
            placed = False
            for idx in order:
                server = self.cloud.server(ids[idx])
                if server.can_store(partition.size):
                    self.catalog.place(partition, server.server_id)
                    self.registry.spawn(partition.pid, server.server_id)
                    placed = True
                    break
            if not placed:
                raise SimulationError(
                    f"cloud too small to seed {partition.pid} "
                    f"({partition.size} bytes)"
                )

    # -- per-epoch machinery ------------------------------------------------

    def _refresh_proximity(self) -> None:
        self._g_of_app = {}
        for app in self.config.apps:
            if app.geography.is_uniform:
                self._g_of_app[app.app_id] = None
            else:
                self._g_of_app[app.app_id] = proximity_weights(
                    self.cloud, app.geography
                )
        self._g_dirty = False

    def _partitions_of_apps(self) -> Dict[int, List[PartitionId]]:
        """Each app's partitions across its rings, cached per ring version.

        Rebuilt only when a split (or a new ring) actually changed the
        partition set — the per-epoch steady state reuses the cached
        index instead of re-walking every ring.
        """
        versions = self.rings.versions()
        if self._pids_versions != versions:
            out: Dict[int, List[PartitionId]] = {}
            for ring in self.rings:
                out.setdefault(ring.app_id, []).extend(
                    p.pid for p in ring
                )
            self._pids_of_apps = out
            self._pids_versions = versions
        return self._pids_of_apps

    def _partitions_of_rings(self) -> List[
        Tuple[Tuple[int, int], List[PartitionId], Optional[np.ndarray]]
    ]:
        """Each ring's partition ids (and their dense partition-index
        slots under the vectorized kernel), cached per ring version."""
        versions = self.rings.versions()
        if self._ring_pids_versions != versions:
            pindex = self.partition_index
            entries = []
            for ring in self.rings:
                pids = [p.pid for p in ring]
                slots = (
                    pindex.slots_of(pids) if pindex is not None else None
                )
                entries.append(((ring.app_id, ring.ring_id), pids, slots))
            self._pids_of_rings = entries
            self._ring_pids_versions = versions
        return self._pids_of_rings

    def _apply_inserts(self, epoch: int) -> InsertOutcome:
        outcome = InsertOutcome(epoch=epoch)
        workload = self.insert_workload
        cfg = self.config.inserts
        if workload is None or cfg is None or epoch < cfg.start_epoch:
            return outcome
        batch = workload.batch(
            epoch, self.rings.all_partitions(), self.popularity
        )
        outcome.attempted = batch.total_inserts
        for pid, count in batch.counts.items():
            partition = self.rings.partition(pid)
            replicas = [
                sid
                for sid in self.catalog.servers_of(pid)
                if sid in self.cloud and self.cloud.server(sid).alive
            ]
            if not replicas:
                outcome.failed += count
                continue
            headroom = min(
                self.cloud.server(sid).storage_available for sid in replicas
            )
            feasible = min(count, headroom // batch.object_size)
            if feasible > 0:
                nbytes = feasible * batch.object_size
                self.catalog.grow_replicas(pid, nbytes)
                partition.grow(nbytes)
                outcome.succeeded += feasible
                outcome.bytes_written += nbytes
            outcome.failed += count - feasible
        return outcome

    def _apply_splits(self) -> List[Tuple[PartitionId, PartitionId, PartitionId]]:
        """Split every overfull partition (cascading) across all rings."""
        done: List[Tuple[PartitionId, PartitionId, PartitionId]] = []
        if self.insert_workload is None:
            # Partition sizes only grow through the insert stream;
            # without one, nothing can ever be overfull (configs cap
            # initial_partition_size at the partition capacity) and the
            # per-ring overfull scan is dead weight in the epoch loop.
            return done
        for ring in self.rings:
            while True:
                overfull = [
                    p
                    for p in ring
                    if p.overfull
                    and p.key_range.span >= 2
                    and self.catalog.replica_count(p.pid) > 0
                ]
                if not overfull:
                    break
                for parent in overfull:
                    low, high = ring.split_partition(parent.pid)
                    self.catalog.split_partition(parent, low, high)
                    self.registry.split_partition(
                        parent.pid, low.pid, high.pid
                    )
                    self.popularity.split(parent.pid, low.pid, high.pid)
                    done.append((parent.pid, low.pid, high.pid))
        return done

    def step(self) -> EpochFrame:
        """Advance the simulation by one epoch and return its frame."""
        epoch = self._epoch
        service = self.membership_service
        added, removed = self.events.apply(
            epoch, self.cloud, kill_only=service is not None
        )
        if added:
            self._apply_budgets(added)
        if service is None:
            for sid in removed:
                self.catalog.drop_server(sid)
                self.registry.drop_server(sid)
        else:
            # Phase A: event-schedule kills become ghosts; heartbeat
            # rounds run over the faulty net; detected deaths complete
            # removal in kill order (the zero-fault config detects
            # every kill the same epoch, replaying the instant-removal
            # path above exactly).
            if added:
                service.register_added(added)
            if removed:
                service.record_kills(removed, epoch)
            service.begin_epoch(epoch)
            removed = service.run_membership_phase(epoch)
            for sid in removed:
                self.cloud.remove_server(sid)
                self.catalog.drop_server(sid)
                self.registry.drop_server(sid)
                service.on_removed(sid)
        if added or removed:
            self._g_dirty = True
        if self.usage_tracker is not None and epoch > 0:
            # Observe last epoch's usage before counters reset.
            self.usage_tracker.observe_cloud(self.cloud)
        cost_index = self.cost_index
        if cost_index is not None and epoch > 0:
            # Hand the previous settlement's per-slot query totals to
            # the cost index (eq. 1's query-load term).  A decider that
            # does not expose them (custom settle) disables the
            # vectorized pricing path for the rest of the run.
            totals = getattr(self.decider, "query_totals", None)
            if totals is None:
                cost_index.detach()
                self.cost_index = cost_index = None
            else:
                cost_index.set_query_totals(
                    totals,
                    getattr(self.decider, "query_totals_version", -1),
                )
        update_board(
            self.board, epoch, self.cloud, self.config.rent_model,
            self.usage_tracker, cost_index,
        )
        board = self.board
        if service is not None:
            # Phase B: disseminate the freshly posted column over the
            # faulty net; decide/settle consume whatever (possibly
            # stale) column the board observer's gossip view converged
            # on.  Zero-fault: ``effective_board`` returns the real
            # board object.
            service.publish_prices(epoch, self.board)
            board = service.effective_board(self.board)
        self.cloud.begin_epoch()
        self.transfers.begin_epoch()
        if self.retry_queue is not None:
            self.retry_queue.begin_epoch()
            self._drain_retries(epoch)
        if self._g_dirty:
            self._refresh_proximity()
        load = self.mix.draw(
            epoch, self._partitions_of_apps(), self.popularity
        )
        self.decider.settle(load, board, self._g_of_app)
        stats: DecisionStats = self.decider.decide(
            board, load, self.streams.decisions, self._g_of_app
        )
        if self.retry_queue is not None:
            self._push_retries(epoch)
        insert_outcome = self._apply_inserts(epoch)
        self._apply_splits()
        if self.data_plane is not None:
            self.data_plane.step(epoch)
        if self.serving is not None:
            self.serving_log.append(self.serving.step(epoch))
        frame = self._collect(epoch, load, stats, insert_outcome)
        self.metrics.append(frame)
        if self.robustness is not None:
            if self.membership_service is not None:
                self.robustness.append(self._collect_control_plane(epoch))
            if self.data_plane is not None:
                self.robustness.append_data_plane(
                    self.data_plane.collect_frame(epoch)
                )
        # Keep the agent ledger dense after retirement-heavy epochs so
        # batched settlement touches contiguous rows.
        self.registry.maybe_compact()
        self._epoch += 1
        return frame

    def run(self, epochs: Optional[int] = None) -> MetricsLog:
        """Run ``epochs`` (default: the configured horizon) and return metrics."""
        remaining = self.config.epochs if epochs is None else epochs
        if remaining < 0:
            raise SimulationError(f"epochs must be >= 0, got {remaining}")
        for __ in range(remaining):
            self.step()
        return self.metrics

    # -- faulty-network control plane ----------------------------------------

    def _drain_retries(self, epoch: int) -> None:
        """Re-attempt queued repair transfers whose backoff expired.

        Each due entry is re-validated first — the partition may have
        split away, the destination may have been removed, or a later
        repair may already have landed a replica there — and resolved
        as failed if stale.  A fresh source is picked among currently
        believed-live replicas (budget headroom permitting); a renewed
        network failure re-queues with doubled backoff.
        """
        queue = self.retry_queue
        service = self.membership_service
        self._retry_skip = set()
        for entry in queue.due(epoch):
            self._retry_skip.add((entry.pid, entry.dst, entry.kind))
            try:
                partition = self.rings.partition(entry.pid)
            except RingError:
                queue.resolve(False)
                continue
            if (
                entry.dst not in self.cloud
                or self.catalog.has_replica(entry.pid, entry.dst)
            ):
                queue.resolve(False)
                continue
            src = None
            best = -1
            for sid in self.catalog.servers_of(entry.pid):
                if sid == entry.dst or not service.believed(sid):
                    continue
                headroom = self.cloud.server(sid).replication_budget.available
                if headroom >= partition.size and headroom > best:
                    src = sid
                    best = headroom
            result = self.transfers.replicate(partition, src, entry.dst)
            if result.ok:
                self.registry.spawn(entry.pid, entry.dst)
                queue.resolve(True)
            elif result.outcome in NETWORK_OUTCOMES:
                queue.requeue(entry, epoch)
            else:
                queue.resolve(False)

    def _push_retries(self, epoch: int) -> None:
        """Queue this epoch's network-failed repair replications."""
        queue = self.retry_queue
        skip = self._retry_skip
        for failure in self.transfers.stats.failures:
            if (
                failure.kind is TransferKind.REPLICATION
                and failure.outcome in NETWORK_OUTCOMES
                and (failure.pid, failure.dst, failure.kind) not in skip
            ):
                queue.push(failure, epoch)

    def _collect_control_plane(self, epoch: int) -> ControlPlaneFrame:
        service = self.membership_service
        queue = self.retry_queue
        pushed, retried, succeeded, dropped = queue.epoch_counts()
        stale_mean, stale_max = service.staleness()
        wasted = sum(
            1
            for f in self.transfers.stats.failures
            if f.outcome in NETWORK_OUTCOMES
        )
        return ControlPlaneFrame(
            epoch=epoch,
            messages=service.net.stats.epoch_counts(),
            actual_live=service.actual_live_count(),
            believed_live=service.believed_live_count(),
            ghosts=service.ghost_count,
            false_suspects=service.false_suspect_count,
            detections=service.last_detections,
            staleness_mean=stale_mean,
            staleness_max=stale_max,
            price_version_lag=service.price_version_lag,
            retries_pushed=pushed,
            retries_retried=retried,
            retries_succeeded=succeeded,
            retries_dropped=dropped,
            wasted_transfers=wasted,
            conflicting_repair_risk=service.net.split_replica_partitions(
                self.catalog
            ),
        )

    # -- observables -----------------------------------------------------------

    def _live_replicas(self, pid: PartitionId) -> List[int]:
        service = self.membership_service
        if service is not None:
            believed = service.believed
            return [
                sid
                for sid in self.catalog.servers_of(pid)
                if believed(sid)
            ]
        return [
            sid
            for sid in self.catalog.servers_of(pid)
            if sid in self.cloud and self.cloud.server(sid).alive
        ]

    def _server_histogram(self) -> ServerVnodeHistogram:
        """Fig. 2 vnodes-per-server counts, gathered from the catalog.

        One bincount over the catalog's flat replica view in cloud slot
        space — O(V) numpy instead of the O(S) per-server Python dict
        build the frames used to store.  Counts are identical to
        ``catalog.vnode_count(sid)`` per live server id (replicas on a
        transiently dead but still-registered server count, exactly as
        the dict did).
        """
        cloud = self.cloud
        cached = self._hist_ids
        if cached is None or cached[0] != cloud.version:
            cached = (cloud.version, tuple(cloud.server_ids))
            self._hist_ids = cached
        ids = cached[1]
        view = self.catalog.flat_view()
        lookup = cloud.slot_lookup()
        sids = view.server_ids
        slots = lookup[np.minimum(sids, len(lookup) - 1)]
        known = slots >= 0
        counts = np.bincount(
            slots[known], minlength=len(ids)
        ).astype(np.int64)
        return ServerVnodeHistogram(ids, counts)

    def _collect(self, epoch: int, load: EpochLoad, stats: DecisionStats,
                 inserts: InsertOutcome) -> EpochFrame:
        if self.avail_index is not None:
            vnodes_per_server = self._server_histogram()
        else:
            # Scalar reference kernel: the pre-refactor per-server walk.
            vnodes_per_server = {
                sid: self.catalog.vnode_count(sid)
                for sid in self.cloud.server_ids
            }
        vnodes_per_ring: Dict[Tuple[int, int], int] = {}
        queries_per_ring: Dict[Tuple[int, int], float] = {}
        avail_per_ring: Dict[Tuple[int, int], float] = {}
        unavailable = 0
        lost = 0
        # Eq. 2 values come from the epoch's incremental cache instead
        # of a fresh O(R²) recomputation per partition per epoch (the
        # scalar reference kernel keeps the recomputation).
        index = self.avail_index
        queries_for = load.queries_for
        if index is not None:
            # Vectorized kernel: gather the per-ring series through
            # numpy from the maintained per-partition vectors (replica
            # counts and eq. 2 sums from the availability store, query
            # counts from the epoch load's dense vector).  Counts and
            # queries are exact integers and the availability values
            # come from the same cache in the same ring order, so every
            # aggregate is bit-identical to the scalar loop below.
            dense = load.index is self.partition_index
            for key, pids, slots in self._partitions_of_rings():
                n = len(pids)
                counts = index.replica_counts_at(slots)
                if dense:
                    queries = load.counts_at(slots)
                else:
                    queries = np.fromiter(
                        (queries_for(pid) for pid in pids),
                        dtype=np.int64, count=n,
                    )
                placed = counts > 0
                avails = index.availability_at(slots)[placed]
                vnodes_per_ring[key] = int(counts.sum())
                queries_per_ring[key] = float(queries[placed].sum())
                avail_per_ring[key] = (
                    float(np.mean(avails)) if avails.size else 0.0
                )
                unavailable += int(queries[~placed].sum())
                lost += int(n - int(placed.sum()))
        else:
            service = self.membership_service
            pred = service.predicate if service is not None else None
            for ring in self.rings:
                key = (ring.app_id, ring.ring_id)
                count = 0
                served = 0.0
                avails: List[float] = []
                for partition in ring:
                    pid = partition.pid
                    queries = queries_for(pid)
                    replicas = self._live_replicas(pid)
                    count += len(replicas)
                    if replicas:
                        served += queries
                        avails.append(
                            availability(self.cloud, replicas, is_alive=pred)
                        )
                    else:
                        unavailable += queries
                        lost += 1
                vnodes_per_ring[key] = count
                queries_per_ring[key] = served
                avail_per_ring[key] = (
                    float(np.mean(avails)) if avails else 0.0
                )
        if isinstance(vnodes_per_server, ServerVnodeHistogram):
            # Rent-tier split as one masked sum over the count vector
            # (ids are in slot order, matching the rent column).
            counts = vnodes_per_server.counts
            rents = self.cloud.monthly_rent_vector()
            expensive = int(counts[rents > self.config.cheap_rent].sum())
            cheap = int(counts.sum()) - expensive
        else:
            expensive = 0
            cheap = 0
            for sid, n in vnodes_per_server.items():
                if (
                    self.cloud.server(sid).monthly_rent
                    > self.config.cheap_rent
                ):
                    expensive += n
                else:
                    cheap += n
        return EpochFrame(
            epoch=epoch,
            total_queries=load.total_queries,
            live_servers=len(self.cloud),
            vnodes_total=self.catalog.total_replicas,
            vnodes_per_ring=vnodes_per_ring,
            vnodes_per_server=vnodes_per_server,
            queries_per_ring=queries_per_ring,
            mean_availability_per_ring=avail_per_ring,
            unsatisfied_partitions=stats.unsatisfied_partitions,
            lost_partitions=lost,
            storage_used=self.cloud.total_storage_used,
            storage_capacity=self.cloud.total_storage_capacity,
            insert_attempts=inserts.attempted,
            insert_failures=inserts.failed,
            repairs=stats.repairs,
            economic_replications=stats.economic_replications,
            migrations=stats.migrations,
            suicides=stats.suicides,
            deferred=stats.deferred,
            min_price=self.board.min_price(),
            mean_price=self.board.mean_price(),
            max_price=self.board.max_price(),
            unavailable_queries=unavailable,
            vnodes_on_expensive=expensive,
            vnodes_on_cheap=cheap,
            replication_bytes=self.transfers.stats.replication_bytes,
            migration_bytes=self.transfers.stats.migration_bytes,
        )
