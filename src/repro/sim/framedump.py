"""Exact (bit-preserving) serialization of :class:`EpochFrame` streams.

The vectorized epoch kernel carries a hard behavioral contract: a
seeded run must emit the *identical* frame stream as the scalar
reference implementation — not "close", identical.  Comparing floats
through ``json.dumps(..., float -> repr)`` round-trips are not good
enough to witness that, so this codec encodes every float through
``float.hex()`` (lossless) and every dict through a canonical sorted
key order.  The golden files under ``tests/integration/golden/`` are
produced with this codec from the pre-refactor engine and pin the
kernel's behavior across PRs.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
from collections.abc import Mapping
from typing import Any, Dict, Iterable, List

from repro.sim.metrics import EpochFrame, MetricsLog


class FrameDumpError(ValueError):
    """Raised for values the codec cannot represent exactly."""


def _encode_value(value: Any) -> Any:
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        # Lossless: float.hex round-trips every finite float64 exactly.
        return {"__float__": value.hex()}
    if isinstance(value, int):
        return value
    if isinstance(value, str) or value is None:
        return value
    if isinstance(value, Mapping):
        # Covers plain dicts and the columnar frame store's lazy
        # histogram view — identical canonical form either way.
        return [
            [_encode_key(k), _encode_value(v)]
            for k, v in sorted(value.items())
        ]
    if isinstance(value, (list, tuple)):
        return [_encode_value(v) for v in value]
    raise FrameDumpError(f"cannot encode {type(value).__name__}: {value!r}")


def _encode_key(key: Any) -> Any:
    if isinstance(key, tuple):
        return list(key)
    if isinstance(key, (int, str)):
        return key
    raise FrameDumpError(f"cannot encode dict key {key!r}")


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        return float.fromhex(value["__float__"])
    if isinstance(value, list):
        return [_decode_value(v) for v in value]
    return value


def frame_to_jsonable(frame: EpochFrame) -> Dict[str, Any]:
    """One frame as a JSON-able dict with lossless float encoding."""
    out: Dict[str, Any] = {}
    for f in dataclasses.fields(frame):
        out[f.name] = _encode_value(getattr(frame, f.name))
    return out


def frames_to_jsonable(frames: Iterable[EpochFrame]) -> List[Dict[str, Any]]:
    return [frame_to_jsonable(frame) for frame in frames]


def dump_frames(frames: Iterable[EpochFrame]) -> str:
    """Canonical JSON text of a frame stream (stable across runs)."""
    return json.dumps(
        frames_to_jsonable(frames), sort_keys=True, separators=(",", ":")
    )


def frames_digest(frames: Iterable[EpochFrame]) -> str:
    """SHA-256 of the canonical dump — a compact behavioral fingerprint."""
    return hashlib.sha256(dump_frames(frames).encode("ascii")).hexdigest()


def dump_log(log: MetricsLog) -> str:
    return dump_frames(iter(log))


def _values_close(expected: Any, actual: Any, rtol: float) -> bool:
    """Structural equality with relative float tolerance.

    Encoded floats (``{"__float__": hex}``) compare through
    ``math.isclose(rel_tol=rtol)``; every other type must match
    exactly, including container shape.  ``rtol=0.0`` degenerates to
    strict equality.
    """
    if expected == actual:
        return True
    exp_float = isinstance(expected, dict) and "__float__" in expected
    act_float = isinstance(actual, dict) and "__float__" in actual
    if exp_float or act_float:
        if not (exp_float and act_float):
            return False
        return math.isclose(
            _decode_value(expected), _decode_value(actual),
            rel_tol=rtol, abs_tol=0.0,
        )
    if isinstance(expected, list) and isinstance(actual, list):
        if len(expected) != len(actual):
            return False
        return all(
            _values_close(e, a, rtol) for e, a in zip(expected, actual)
        )
    return False


def frame_diff(expected: Dict[str, Any], actual: Dict[str, Any],
               rtol: float = 0.0) -> List[str]:
    """Human-readable field-level differences between two encoded frames.

    ``rtol`` relaxes float fields to a relative tolerance — the opt-in
    comparison mode for scenarios (fractional confidences) whose
    incremental eq. 2 sums legitimately drift from the scalar loop by
    rounding ulps (see PERFORMANCE.md); the default remains
    bit-exactness.
    """
    problems: List[str] = []
    for name in sorted(set(expected) | set(actual)):
        a, b = expected.get(name), actual.get(name)
        if rtol > 0.0:
            if _values_close(a, b, rtol):
                continue
        elif a == b:
            continue
        problems.append(
            f"{name}: expected {_decode_value(a)!r}, "
            f"got {_decode_value(b)!r}"
        )
    return problems


def compare_streams(expected: List[Dict[str, Any]],
                    actual: Iterable[EpochFrame],
                    rtol: float = 0.0) -> List[str]:
    """Differences between a stored golden stream and a live frame stream.

    Returns a list of mismatch descriptions (empty = identical, or
    within ``rtol`` when a tolerance is given).  Stops detailing after
    the first few divergent frames to keep failure output readable.
    """
    problems: List[str] = []
    encoded = frames_to_jsonable(actual)
    if len(expected) != len(encoded):
        problems.append(
            f"frame count differs: expected {len(expected)}, "
            f"got {len(encoded)}"
        )
    for i, (exp, act) in enumerate(zip(expected, encoded)):
        if exp == act:
            continue
        for line in frame_diff(exp, act, rtol):
            problems.append(f"epoch {i}: {line}")
        if len(problems) > 24:
            problems.append("... (truncated)")
            break
    return problems
