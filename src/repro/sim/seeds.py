"""Deterministic RNG streams for reproducible simulations.

Every stochastic component (popularity draw, arrivals, decision
ordering, event victim selection, ...) gets its own child generator
derived from one master seed, so changing e.g. the arrival draws never
perturbs the popularity sample — runs stay comparable across scenario
variants, which the ablation benches rely on.
"""

from __future__ import annotations

from typing import Dict

import numpy as np


class SeedError(ValueError):
    """Raised for invalid seed requests."""

#: Named streams handed out by :class:`SeedSequence`, in spawn order.
STREAMS = (
    "topology",
    "popularity",
    "arrivals",
    "decisions",
    "events",
    "inserts",
    "workload",
    # Control-plane streams (appended, never reordered: spawn order is
    # part of the reproducibility contract — inserting a name above
    # would shift every later stream's child seed and silently change
    # all seeded runs).
    "gossip",
    "net",
    # Data-plane client traffic (ISSUE 7) — appended for the same
    # reason: earlier children are unchanged by a longer spawn.
    "dataplane",
    # Live-serving front door arrivals (ISSUE 10) — appended last so
    # every earlier stream's child seed is untouched.
    "serving",
)


class RngStreams:
    """A fixed family of independent generators from one master seed."""

    def __init__(self, seed: int = 0) -> None:
        if seed < 0:
            raise SeedError(f"seed must be >= 0, got {seed}")
        self.seed = seed
        root = np.random.SeedSequence(seed)
        children = root.spawn(len(STREAMS))
        self._rngs: Dict[str, np.random.Generator] = {
            name: np.random.default_rng(child)
            for name, child in zip(STREAMS, children)
        }

    def __getattr__(self, name: str) -> np.random.Generator:
        try:
            return self._rngs[name]
        except KeyError:
            raise AttributeError(f"no rng stream named {name!r}") from None

    def stream(self, name: str) -> np.random.Generator:
        if name not in self._rngs:
            raise SeedError(
                f"unknown stream {name!r}; available: {sorted(self._rngs)}"
            )
        return self._rngs[name]
