"""Randomized fault schedules and the consistency-audit harness.

The chaos side of ISSUE 7: draw a random-but-reproducible network
fault schedule (loss level, partition windows, link-flap windows) over
the PR 6 :class:`repro.net.model.NetConfig` machinery, run a
data-plane-enabled simulation under it, let the system quiesce (client
traffic paused, hints draining, anti-entropy running), and replay the
recorded client history through the linearizability-lite checker in
:mod:`repro.analysis.consistency`.

The schedules are *network-only* by design: partitions and flaps cut
links and manufacture false suspicion, loss thins heartbeats — but no
server's storage is destroyed.  Under that fault model the audit's
durability verdict must be GREEN: every acked copy physically
survives, the catalog mirror drains decommissioned replicas, and
parked hints count as surviving copies until they expire.  Lost
writes therefore indicate a real data-plane bug, not bad luck.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.analysis.consistency import ConsistencyReport, audit_history
from repro.net.model import LinkFlap, NetConfig, NetPartition
from repro.sim.config import DataPlaneConfig, SimConfig
from repro.sim.engine import Simulation


class ChaosError(ValueError):
    """Raised for malformed chaos-harness parameters."""


def random_fault_schedule(
    seed: int,
    epochs: int,
    *,
    loss_range: Tuple[float, float] = (0.02, 0.15),
    max_partitions: int = 2,
    max_flaps: int = 2,
    quiet_tail: int = 10,
    base: Optional[NetConfig] = None,
) -> NetConfig:
    """Draw a reproducible random fault schedule for an ``epochs`` run.

    Every scheduled window ends at least ``quiet_tail`` epochs before
    the horizon, so the run finishes with all cuts healed and the
    settle phase drains hints against an (almost) honest view — loss
    keeps applying, which is exactly the residual noise the audit
    should tolerate.
    """
    if epochs < 1:
        raise ChaosError(f"epochs must be >= 1, got {epochs}")
    if quiet_tail < 0:
        raise ChaosError(f"quiet_tail must be >= 0, got {quiet_tail}")
    lo, hi = loss_range
    if not 0.0 <= lo <= hi < 1.0:
        raise ChaosError(f"bad loss_range {loss_range}")
    rng = np.random.default_rng(seed)
    horizon = max(2, epochs - quiet_tail)
    partitions: List[NetPartition] = []
    for _ in range(int(rng.integers(0, max_partitions + 1))):
        start = int(rng.integers(1, horizon - 1)) if horizon > 2 else 1
        length = int(rng.integers(2, 9))
        heal = min(start + length, horizon)
        if heal <= start:
            continue
        partitions.append(NetPartition(
            start_epoch=start, heal_epoch=heal,
            depth=int(rng.integers(2, 5)),
            asymmetric=bool(rng.integers(0, 2)),
        ))
    flaps: List[LinkFlap] = []
    for _ in range(int(rng.integers(0, max_flaps + 1))):
        start = int(rng.integers(1, horizon - 1)) if horizon > 2 else 1
        length = int(rng.integers(2, 7))
        heal = min(start + length, horizon)
        if heal <= start:
            continue
        flaps.append(LinkFlap(start_epoch=start, heal_epoch=heal))
    cfg = base if base is not None else NetConfig(
        rounds_per_epoch=2, suspect_rounds=3, dead_rounds=8
    )
    return dataclasses.replace(
        cfg,
        loss=float(rng.uniform(lo, hi)),
        partitions=tuple(partitions),
        flaps=tuple(flaps),
    )


@dataclass
class AuditRun:
    """A completed chaos run plus its audit verdict."""

    sim: Simulation
    report: ConsistencyReport
    settle_epochs: int

    @property
    def green(self) -> bool:
        return self.report.green


def run_consistency_audit(
    config: SimConfig,
    *,
    events=None,
    settle_epochs: int = 16,
    decider_factory=None,
) -> AuditRun:
    """Run ``config`` to its horizon, quiesce, and audit the history.

    ``config`` must carry a ``data_plane`` (one is attached with
    defaults if missing).  After the configured horizon the harness
    keeps stepping for ``settle_epochs`` with client traffic paused,
    so in-flight hints drain toward rehabilitated targets; the audit
    then compares every committed write against the freshest
    surviving copy.
    """
    if settle_epochs < 0:
        raise ChaosError(
            f"settle_epochs must be >= 0, got {settle_epochs}"
        )
    if config.data_plane is None:
        config = dataclasses.replace(config, data_plane=DataPlaneConfig())
    kwargs = {}
    if decider_factory is not None:
        kwargs["decider_factory"] = decider_factory
    sim = Simulation(config, events=events, **kwargs)
    sim.run()
    plane = sim.data_plane
    assert plane is not None
    plane.clients_enabled = False
    for _ in range(settle_epochs):
        sim.step()
    report = audit_history(
        plane.history, final_versions=plane.surviving_versions()
    )
    return AuditRun(sim=sim, report=report, settle_epochs=settle_epochs)
