"""Per-epoch metric collection for the paper's figures.

Each epoch the engine emits one :class:`EpochFrame` holding exactly the
observables the evaluation plots: virtual nodes per server (Fig. 2),
virtual nodes per ring (Fig. 3), average query load per ring per server
(Fig. 4) and storage usage plus insert failures (Fig. 5) — along with
economic diagnostics (prices, actions, availability satisfaction) the
ablation benches use.  :class:`MetricsLog` turns the frame stream into
named series.

The frame stream is the epoch kernels' equivalence contract: a seeded
run must emit bit-identical frames under the vectorized and scalar
kernels (``tests/integration/test_kernel_equivalence.py``).  Under the
vectorized kernel every per-ring aggregate is gathered from the
maintained per-partition vectors — the epoch load's dense query
counts and the availability store's eq. 2 / replica-count vectors
(``Simulation._collect``) — in the same ring order the scalar loop
visits, which is what keeps the aggregates exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np


class MetricsError(KeyError):
    """Raised when a requested series is unavailable."""


@dataclass(frozen=True)
class EpochFrame:
    """One epoch's observables."""

    epoch: int
    total_queries: int
    live_servers: int
    vnodes_total: int
    vnodes_per_ring: Dict[Tuple[int, int], int]
    vnodes_per_server: Dict[int, int]
    queries_per_ring: Dict[Tuple[int, int], float]
    mean_availability_per_ring: Dict[Tuple[int, int], float]
    unsatisfied_partitions: int
    lost_partitions: int
    storage_used: int
    storage_capacity: int
    insert_attempts: int
    insert_failures: int
    repairs: int
    economic_replications: int
    migrations: int
    suicides: int
    deferred: int
    min_price: float
    mean_price: float
    max_price: float
    unavailable_queries: int
    vnodes_on_expensive: int
    vnodes_on_cheap: int
    replication_bytes: int = 0
    migration_bytes: int = 0

    @property
    def bytes_moved(self) -> int:
        """Maintenance traffic over access links this epoch."""
        return self.replication_bytes + self.migration_bytes

    @property
    def storage_fraction(self) -> float:
        if self.storage_capacity == 0:
            return 0.0
        return self.storage_used / self.storage_capacity

    def query_load_per_server(self, ring: Tuple[int, int]) -> float:
        """Fig. 4 observable: a ring's queries averaged over live servers."""
        if self.live_servers == 0:
            return 0.0
        return self.queries_per_ring.get(ring, 0.0) / self.live_servers


class MetricsLog:
    """Ordered frames plus series extraction helpers."""

    def __init__(self) -> None:
        self._frames: List[EpochFrame] = []

    def append(self, frame: EpochFrame) -> None:
        if self._frames and frame.epoch <= self._frames[-1].epoch:
            raise MetricsError(
                f"non-monotonic epoch {frame.epoch} after "
                f"{self._frames[-1].epoch}"
            )
        self._frames.append(frame)

    def __len__(self) -> int:
        return len(self._frames)

    def __iter__(self):
        return iter(self._frames)

    def __getitem__(self, idx: int) -> EpochFrame:
        return self._frames[idx]

    @property
    def last(self) -> EpochFrame:
        if not self._frames:
            raise MetricsError("no frames collected")
        return self._frames[-1]

    def epochs(self) -> List[int]:
        return [f.epoch for f in self._frames]

    def series(self, name: str) -> np.ndarray:
        """A scalar attribute of every frame as an array."""
        if not self._frames:
            raise MetricsError("no frames collected")
        if not hasattr(self._frames[0], name):
            raise MetricsError(f"unknown series {name!r}")
        return np.array(
            [getattr(f, name) for f in self._frames], dtype=np.float64
        )

    def ring_series(self, attr: str, ring: Tuple[int, int]) -> np.ndarray:
        """A per-ring dict attribute projected onto one ring."""
        out = []
        for frame in self._frames:
            mapping: Dict = getattr(frame, attr)
            out.append(mapping.get(ring, 0))
        return np.array(out, dtype=np.float64)

    def rings(self) -> List[Tuple[int, int]]:
        seen: Dict[Tuple[int, int], None] = {}
        for frame in self._frames:
            for ring in frame.vnodes_per_ring:
                seen.setdefault(ring, None)
        return sorted(seen)

    def query_load_series(self, ring: Tuple[int, int]) -> np.ndarray:
        """Fig. 4 series: average per-server query load of one ring."""
        return np.array(
            [f.query_load_per_server(ring) for f in self._frames],
            dtype=np.float64,
        )

    def vnode_histogram(self, epoch_index: int = -1) -> Dict[int, int]:
        """Fig. 2 snapshot: vnodes per server at one epoch."""
        return dict(self._frames[epoch_index].vnodes_per_server)

    def storage_fraction_series(self) -> np.ndarray:
        return np.array(
            [f.storage_fraction for f in self._frames], dtype=np.float64
        )

    def cumulative_insert_failures(self) -> np.ndarray:
        return np.cumsum(self.series("insert_failures"))

    def total_rent_paid(self) -> float:
        """Sum over epochs of mean price × vnodes — total cost proxy."""
        return float(
            sum(f.mean_price * f.vnodes_total for f in self._frames)
        )

    def total_bytes_moved(self) -> int:
        """Cumulative maintenance traffic (replication + migration)."""
        return int(
            sum(f.replication_bytes + f.migration_bytes for f in self._frames)
        )

    def action_totals(self) -> Dict[str, int]:
        return {
            "repairs": int(self.series("repairs").sum()),
            "economic_replications": int(
                self.series("economic_replications").sum()
            ),
            "migrations": int(self.series("migrations").sum()),
            "suicides": int(self.series("suicides").sum()),
            "deferred": int(self.series("deferred").sum()),
        }


def load_balance_index(loads: Sequence[float]) -> float:
    """Jain's fairness index of per-server loads: 1.0 = perfectly even.

    Used to quantify the Fig. 4 claim that "the query load per server
    remains quite balanced despite the variations in the total load".
    """
    arr = np.asarray(list(loads), dtype=np.float64)
    if arr.size == 0:
        return 1.0
    total = arr.sum()
    if total == 0:
        return 1.0
    return float(total * total / (arr.size * np.square(arr).sum()))
