"""Per-epoch metric collection for the paper's figures.

Each epoch the engine emits one :class:`EpochFrame` holding exactly the
observables the evaluation plots: virtual nodes per server (Fig. 2),
virtual nodes per ring (Fig. 3), average query load per ring per server
(Fig. 4) and storage usage plus insert failures (Fig. 5) — along with
economic diagnostics (prices, actions, availability satisfaction) the
ablation benches use.  :class:`MetricsLog` turns the frame stream into
named series.

Storage is *columnar*: :class:`MetricsLog` keeps a :class:`FrameStore`
— every scalar field as one growable array, the per-server vnode
histogram as one compact count vector per epoch sharing a per-version
server-id tuple — instead of a list of frames full of dicts.  At
20 000 servers a stored ``{sid: count}`` dict dominated frame memory;
the column store holds the same information in one compact int32
vector per epoch (``HIST_COUNT_DTYPE``).  :class:`EpochFrame` remains the frame API: reads materialize a
lightweight row view whose ``vnodes_per_server`` is a lazy
:class:`ServerVnodeHistogram` mapping over the stored arrays, so
``framedump``, the goldens, reporting and the examples see
byte-identical streams.

The frame stream is the epoch kernels' equivalence contract: a seeded
run must emit bit-identical frames under the vectorized and scalar
kernels (``tests/integration/test_kernel_equivalence.py``).  Under the
vectorized kernel every per-ring aggregate is gathered from the
maintained per-partition vectors — the epoch load's dense query
counts and the availability store's eq. 2 / replica-count vectors
(``Simulation._collect``) — in the same ring order the scalar loop
visits, which is what keeps the aggregates exact.
"""

from __future__ import annotations

import sys
from collections.abc import Mapping
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.util.columns import GrowableColumn


class MetricsError(KeyError):
    """Raised when a requested series is unavailable."""


class ServerVnodeHistogram(Mapping):
    """Lazy ``{server_id: vnode count}`` view over two arrays.

    The Fig. 2 observable without the dict: a shared server-id tuple
    (one per cloud-membership version, not per epoch) plus one compact
    count vector.  Behaves like the dict the engine used to build —
    same iteration order (slot order), same items, equality against
    plain dicts — while storing no per-entry objects.
    """

    __slots__ = ("_ids", "_counts", "_index")

    def __init__(self, server_ids: Tuple[int, ...],
                 counts: np.ndarray) -> None:
        if len(server_ids) != len(counts):
            raise MetricsError(
                f"histogram mismatch: {len(server_ids)} ids, "
                f"{len(counts)} counts"
            )
        self._ids = tuple(server_ids)
        self._counts = counts
        self._index: Optional[Dict[int, int]] = None

    @property
    def server_ids(self) -> Tuple[int, ...]:
        return self._ids

    @property
    def counts(self) -> np.ndarray:
        """The per-server count vector, slot order (do not mutate)."""
        return self._counts

    def _lookup(self) -> Dict[int, int]:
        index = self._index
        if index is None:
            index = {sid: i for i, sid in enumerate(self._ids)}
            self._index = index
        return index

    def __getitem__(self, server_id: int) -> int:
        idx = self._lookup().get(server_id)
        if idx is None:
            raise KeyError(server_id)
        return int(self._counts[idx])

    def __iter__(self) -> Iterator[int]:
        return iter(self._ids)

    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, server_id: object) -> bool:
        return server_id in self._lookup()
    # keys()/values()/items() come from Mapping: proper dict-view
    # objects (set operations on keys() keep working), whose iteration
    # goes through __getitem__ and therefore yields Python ints — which
    # is what the framedump codec requires.


@dataclass(frozen=True, slots=True)
class EpochFrame:
    """One epoch's observables (a row view when read from the log)."""

    epoch: int
    total_queries: int
    live_servers: int
    vnodes_total: int
    vnodes_per_ring: Dict[Tuple[int, int], int]
    vnodes_per_server: Mapping
    queries_per_ring: Dict[Tuple[int, int], float]
    mean_availability_per_ring: Dict[Tuple[int, int], float]
    unsatisfied_partitions: int
    lost_partitions: int
    storage_used: int
    storage_capacity: int
    insert_attempts: int
    insert_failures: int
    repairs: int
    economic_replications: int
    migrations: int
    suicides: int
    deferred: int
    min_price: float
    mean_price: float
    max_price: float
    unavailable_queries: int
    vnodes_on_expensive: int
    vnodes_on_cheap: int
    replication_bytes: int = 0
    migration_bytes: int = 0

    @property
    def bytes_moved(self) -> int:
        """Maintenance traffic over access links this epoch."""
        return self.replication_bytes + self.migration_bytes

    @property
    def storage_fraction(self) -> float:
        if self.storage_capacity == 0:
            return 0.0
        return self.storage_used / self.storage_capacity

    def query_load_per_server(self, ring: Tuple[int, int]) -> float:
        """Fig. 4 observable: a ring's queries averaged over live servers."""
        if self.live_servers == 0:
            return 0.0
        return self.queries_per_ring.get(ring, 0.0) / self.live_servers


#: EpochFrame scalar fields by storage class, in field order.
INT_FIELDS: Tuple[str, ...] = (
    "epoch", "total_queries", "live_servers", "vnodes_total",
    "unsatisfied_partitions", "lost_partitions", "storage_used",
    "storage_capacity", "insert_attempts", "insert_failures", "repairs",
    "economic_replications", "migrations", "suicides", "deferred",
    "unavailable_queries", "vnodes_on_expensive", "vnodes_on_cheap",
    "replication_bytes", "migration_bytes",
)
FLOAT_FIELDS: Tuple[str, ...] = ("min_price", "mean_price", "max_price")
RING_FIELDS: Tuple[str, ...] = (
    "vnodes_per_ring", "queries_per_ring", "mean_availability_per_ring",
)
#: Storage dtype of each ring-keyed field's value column.
RING_FIELD_DTYPES: Dict[str, object] = {
    "vnodes_per_ring": np.int64,
    "queries_per_ring": np.float64,
    "mean_availability_per_ring": np.float64,
}
#: Storage dtype of the per-epoch vnode histogram vectors — the frame
#: store's dominant allocation at scale (one S-wide vector per epoch;
#: 20 000 servers × int64 was 160 KB/epoch).  Per-server vnode counts
#: are bounded far below 2^31, and reads go through ``int(...)`` casts,
#: so int32 storage round-trips exactly; :meth:`FrameStore.append`
#: still keeps a wider vector verbatim if its values would not fit.
HIST_COUNT_DTYPE = np.int32


class _RingField:
    """One ring-keyed frame field as per-ring value/presence columns.

    The engine emits a tiny ``{(app_id, ring_id): value}`` dict per
    epoch for each of the three per-ring observables; storing those
    dicts per epoch is what the column store exists to avoid.  Here
    each ring key owns one growable value column plus one presence
    column (rings can appear mid-run — elasticity — and hand-built
    frame streams may drop a ring for an epoch), so a whole run is
    R columns regardless of epoch count, and per-ring series are plain
    array gathers.

    Round trips are exact for the value types the engine emits (Python
    ``int`` for counts, ``float`` for queries/availabilities).  An
    epoch whose mapping carries anything else — hand-built frames in
    tests — is kept verbatim in a per-epoch overflow dict instead of
    being coerced, so :meth:`get` always reproduces the appended
    mapping exactly.
    """

    __slots__ = ("_dtype", "_is_int", "_keys", "_cols", "_present",
                 "_raw", "_n")

    def __init__(self, dtype) -> None:
        self._dtype = dtype
        self._is_int = np.issubdtype(np.dtype(dtype), np.integer)
        self._keys: List = []
        self._cols: Dict[object, GrowableColumn] = {}
        self._present: Dict[object, GrowableColumn] = {}
        self._raw: Dict[int, Dict] = {}
        self._n = 0

    def _representable(self, value: object) -> bool:
        if self._is_int:
            return isinstance(value, (int, np.integer)) and not isinstance(
                value, bool
            )
        return isinstance(value, (float, np.floating))

    def append(self, mapping: Mapping) -> None:
        epoch = self._n
        items = dict(mapping)
        if not all(self._representable(v) for v in items.values()):
            # Exactness beats compactness: park the odd epoch verbatim.
            self._raw[epoch] = items
            items = {}
        for key in items:
            if key not in self._cols:
                self._keys.append(key)
                column = GrowableColumn(self._dtype)
                present = GrowableColumn(bool)
                # Backfill the epochs before this ring first appeared.
                for __ in range(epoch):
                    column.append(0)
                    present.append(False)
                self._cols[key] = column
                self._present[key] = present
        for key in self._keys:
            if key in items:
                self._cols[key].append(items[key])
                self._present[key].append(True)
            else:
                self._cols[key].append(0)
                self._present[key].append(False)
        self._n += 1

    def get(self, index: int) -> Dict:
        """The epoch's mapping, reconstructed exactly."""
        raw = self._raw.get(index)
        if raw is not None:
            return dict(raw)
        cast = int if self._is_int else float
        return {
            key: cast(self._cols[key][index])
            for key in self._keys
            if self._present[key][index]
        }

    def keys(self) -> List:
        """Every ring key ever stored (first-appearance order)."""
        seen = dict.fromkeys(self._keys)
        for mapping in self._raw.values():
            seen.update(dict.fromkeys(mapping))
        return list(seen)

    def series(self, ring) -> np.ndarray:
        """One ring's values over all epochs (0 where absent), float64."""
        if self._raw:
            # Overflow epochs are test-stream territory; take the
            # exact per-epoch path rather than splicing arrays.
            return np.array(
                [self.get(i).get(ring, 0) for i in range(self._n)],
                dtype=np.float64,
            )
        column = self._cols.get(ring)
        if column is None:
            return np.zeros(self._n, dtype=np.float64)
        values = column.view().astype(np.float64)
        return np.where(self._present[ring].view(), values, 0.0)

    @property
    def nbytes(self) -> int:
        total = sum(c.nbytes for c in self._cols.values())
        total += sum(c.nbytes for c in self._present.values())
        total += sum(sys.getsizeof(d) for d in self._raw.values())
        return total


class FrameStore:
    """Columnar backing store for an :class:`EpochFrame` stream.

    Scalar fields live in growable int64/float64 columns; the per-ring
    fields live in a ring-keyed column block (one value/presence column
    pair per ring per field — see :class:`_RingField`); the per-server
    vnode histogram is stored as one count vector per epoch plus a
    server-id tuple shared across epochs of one cloud-membership
    version.  :meth:`frame` materializes a row view on demand — round
    trips are exact (int64/float64 hold every value the engine emits,
    and off-type test streams overflow to verbatim storage), so a
    stored stream serializes byte-identically to the frames it was
    appended from.
    """

    __slots__ = ("_ints", "_floats", "_rings", "_hist_ids", "_hist_counts")

    def __init__(self) -> None:
        self._ints: Dict[str, GrowableColumn] = {
            name: GrowableColumn(np.int64) for name in INT_FIELDS
        }
        self._floats: Dict[str, GrowableColumn] = {
            name: GrowableColumn(np.float64) for name in FLOAT_FIELDS
        }
        self._rings: Dict[str, _RingField] = {
            name: _RingField(RING_FIELD_DTYPES[name])
            for name in RING_FIELDS
        }
        self._hist_ids: List[Tuple[int, ...]] = []
        self._hist_counts: List[np.ndarray] = []

    def __len__(self) -> int:
        return len(self._ints["epoch"])

    def append(self, frame: EpochFrame) -> None:
        for name, column in self._ints.items():
            column.append(int(getattr(frame, name)))
        for name, column in self._floats.items():
            column.append(float(getattr(frame, name)))
        for name, stored in self._rings.items():
            stored.append(getattr(frame, name))
        hist = frame.vnodes_per_server
        if isinstance(hist, ServerVnodeHistogram):
            ids, counts = hist.server_ids, hist.counts
        else:
            ids = tuple(hist)
            counts = np.fromiter(
                (hist[sid] for sid in ids), dtype=np.int64, count=len(ids)
            )
        if counts.dtype != HIST_COUNT_DTYPE:
            # Narrow for storage only when exact: a hand-built stream
            # carrying counts past the int32 range keeps its dtype.
            narrowed = counts.astype(HIST_COUNT_DTYPE)
            if np.array_equal(narrowed, counts):
                counts = narrowed
        # Share the id tuple with the previous epoch when membership
        # did not change — the common case, and what keeps the store's
        # footprint one count vector per epoch.
        if self._hist_ids and self._hist_ids[-1] == ids:
            ids = self._hist_ids[-1]
        self._hist_ids.append(ids)
        self._hist_counts.append(counts)

    def frame(self, index: int) -> EpochFrame:
        """Materialize one epoch as a row view (lazy histogram)."""
        n = len(self)
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError(f"frame index {index} out of range ({n})")
        fields: Dict[str, object] = {
            name: int(column[index]) for name, column in self._ints.items()
        }
        for name, column in self._floats.items():
            fields[name] = float(column[index])
        for name, stored in self._rings.items():
            fields[name] = stored.get(index)
        fields["vnodes_per_server"] = ServerVnodeHistogram(
            self._hist_ids[index], self._hist_counts[index]
        )
        return EpochFrame(**fields)

    def has_column(self, name: str) -> bool:
        return name in self._ints or name in self._floats

    @property
    def last_epoch(self) -> int:
        if not len(self):
            raise MetricsError("no frames collected")
        return int(self._ints["epoch"][len(self) - 1])

    def column(self, name: str) -> np.ndarray:
        """One scalar field over all epochs, as float64 (fresh array)."""
        column = self._ints.get(name)
        if column is None:
            column = self._floats.get(name)
        if column is None:
            raise MetricsError(f"unknown column {name!r}")
        return column.view().astype(np.float64)

    def int_column_total(self, name: str) -> int:
        """Exact Python-int sum of one int column (no float64 cast).

        Byte counters can cross 2^53 over a long 100×-scale run, where
        a float64 sum silently loses integer exactness.
        """
        column = self._ints.get(name)
        if column is None:
            raise MetricsError(f"unknown int column {name!r}")
        return int(sum(int(v) for v in column.view().tolist()))

    def _ring_field(self, name: str) -> _RingField:
        field = self._rings.get(name)
        if field is None:
            raise MetricsError(f"unknown ring field {name!r}")
        return field

    def ring_dicts(self, name: str) -> List[Dict]:
        """Per-epoch mappings of one ring field (materialized views)."""
        field = self._ring_field(name)
        return [field.get(i) for i in range(len(self))]

    def ring_series(self, name: str, ring) -> np.ndarray:
        """One ring's values over all epochs (0 absent) as float64."""
        return self._ring_field(name).series(ring)

    def ring_keys(self, name: str = "vnodes_per_ring") -> List:
        """Every ring key one field ever stored, first-appearance order."""
        return self._ring_field(name).keys()

    def histogram(self, index: int) -> ServerVnodeHistogram:
        if index < 0:
            index += len(self)
        return ServerVnodeHistogram(
            self._hist_ids[index], self._hist_counts[index]
        )

    @property
    def nbytes(self) -> int:
        """Approximate resident bytes of the stored stream.

        Counts every column array, each epoch's histogram vector, the
        shared id tuples (once per distinct tuple) and the small
        per-ring dicts — the store only grows, so the value at the end
        of a run is its peak.
        """
        total = sum(c.nbytes for c in self._ints.values())
        total += sum(c.nbytes for c in self._floats.values())
        total += sum(counts.nbytes for counts in self._hist_counts)
        seen = set()
        for ids in self._hist_ids:
            if id(ids) not in seen:
                seen.add(id(ids))
                total += sys.getsizeof(ids)
        for stored in self._rings.values():
            total += stored.nbytes
        return total


class MetricsLog:
    """Ordered frames plus series extraction helpers (column-backed)."""

    def __init__(self) -> None:
        self._store = FrameStore()

    @property
    def store(self) -> FrameStore:
        """The columnar backing store (read-only by contract)."""
        return self._store

    @property
    def nbytes(self) -> int:
        """Peak resident bytes of the stored frame stream."""
        return self._store.nbytes

    def append(self, frame: EpochFrame) -> None:
        store = self._store
        if len(store) and frame.epoch <= store.last_epoch:
            raise MetricsError(
                f"non-monotonic epoch {frame.epoch} after "
                f"{store.last_epoch}"
            )
        store.append(frame)

    def __len__(self) -> int:
        return len(self._store)

    def __iter__(self) -> Iterator[EpochFrame]:
        store = self._store
        return (store.frame(i) for i in range(len(store)))

    def __getitem__(self, idx):
        if isinstance(idx, slice):
            return [
                self._store.frame(i)
                for i in range(*idx.indices(len(self._store)))
            ]
        return self._store.frame(idx)

    @property
    def last(self) -> EpochFrame:
        if not len(self._store):
            raise MetricsError("no frames collected")
        return self._store.frame(len(self._store) - 1)

    def epochs(self) -> List[int]:
        return [int(e) for e in self._store.column("epoch")]

    def series(self, name: str) -> np.ndarray:
        """A scalar attribute of every frame as an array."""
        store = self._store
        if not len(store):
            raise MetricsError("no frames collected")
        if store.has_column(name):
            return store.column(name)
        # Derived attributes (properties) fall back to materialization.
        if not hasattr(EpochFrame, name):
            raise MetricsError(f"unknown series {name!r}")
        return np.array(
            [getattr(frame, name) for frame in self], dtype=np.float64
        )

    def ring_series(self, attr: str, ring: Tuple[int, int]) -> np.ndarray:
        """A per-ring attribute projected onto one ring (column gather)."""
        return self._store.ring_series(attr, ring)

    def rings(self) -> List[Tuple[int, int]]:
        return sorted(self._store.ring_keys("vnodes_per_ring"))

    def query_load_series(self, ring: Tuple[int, int]) -> np.ndarray:
        """Fig. 4 series: average per-server query load of one ring."""
        live = self._store.column("live_servers")
        queries = self._store.ring_series("queries_per_ring", ring)
        out = np.zeros(len(queries), dtype=np.float64)
        np.divide(queries, live, out=out, where=live > 0)
        return out

    def vnode_histogram(self, epoch_index: int = -1) -> Mapping:
        """Fig. 2 snapshot: vnodes per server at one epoch.

        Returns the stored histogram *view* (a read-only mapping over
        the count vector) — no O(S) dict copy per access.
        """
        return self._store.histogram(epoch_index)

    def vnode_counts(self, epoch_index: int = -1) -> np.ndarray:
        """One epoch's per-server vnode counts, slot order (read-only)."""
        return self._store.histogram(epoch_index).counts

    def storage_fraction_series(self) -> np.ndarray:
        used = self._store.column("storage_used")
        cap = self._store.column("storage_capacity")
        out = np.zeros(len(used), dtype=np.float64)
        nonzero = cap > 0
        np.divide(used, cap, out=out, where=nonzero)
        return out

    def cumulative_insert_failures(self) -> np.ndarray:
        return np.cumsum(self.series("insert_failures"))

    def total_rent_paid(self) -> float:
        """Sum over epochs of mean price × vnodes — total cost proxy."""
        return float(
            (
                self._store.column("mean_price")
                * self._store.column("vnodes_total")
            ).sum()
        )

    def total_bytes_moved(self) -> int:
        """Cumulative maintenance traffic (replication + migration).

        Summed over exact integers — byte totals outgrow float64's
        53-bit mantissa on long 100×-scale runs.
        """
        return (
            self._store.int_column_total("replication_bytes")
            + self._store.int_column_total("migration_bytes")
        )

    def action_totals(self) -> Dict[str, int]:
        return {
            "repairs": int(self.series("repairs").sum()),
            "economic_replications": int(
                self.series("economic_replications").sum()
            ),
            "migrations": int(self.series("migrations").sum()),
            "suicides": int(self.series("suicides").sum()),
            "deferred": int(self.series("deferred").sum()),
        }


@dataclass(frozen=True)
class ControlPlaneFrame:
    """One epoch's control-plane observables (faulty-network runs).

    Emitted alongside the :class:`EpochFrame` stream when the run
    carries a :class:`repro.net.model.NetConfig` — the EpochFrame
    contract (and the goldens serialized from it) is untouched.
    ``messages`` maps each message code to its
    ``(sent, delivered, dropped_loss, dropped_partition)`` epoch
    counts, straight from :class:`repro.net.model.MessageStats`.
    """

    epoch: int
    messages: Dict[str, Tuple[int, int, int, int]]
    actual_live: int
    believed_live: int
    ghosts: int
    false_suspects: int
    detections: int
    staleness_mean: float
    staleness_max: int
    price_version_lag: int
    retries_pushed: int
    retries_retried: int
    retries_succeeded: int
    retries_dropped: int
    wasted_transfers: int
    conflicting_repair_risk: int

    @property
    def messages_sent(self) -> int:
        return sum(row[0] for row in self.messages.values())

    @property
    def messages_dropped(self) -> int:
        return sum(row[2] + row[3] for row in self.messages.values())

    @property
    def membership_error(self) -> int:
        """|believed live − actually live| — the staleness the engine
        acted on this epoch (ghosts believed up + live believed down)."""
        return self.ghosts + self.false_suspects


#: ControlPlaneFrame scalar fields exposed through
#: :meth:`RobustnessLog.series` (ints stored as float64 like
#: :meth:`MetricsLog.series` does).
CONTROL_FIELDS: Tuple[str, ...] = (
    "epoch", "actual_live", "believed_live", "ghosts", "false_suspects",
    "detections", "staleness_mean", "staleness_max", "price_version_lag",
    "retries_pushed", "retries_retried", "retries_succeeded",
    "retries_dropped", "wasted_transfers", "conflicting_repair_risk",
)


@dataclass(frozen=True)
class DataPlaneFrame:
    """One epoch's data-plane observables (stale-view serving runs).

    The quorum store's mirror of :class:`ControlPlaneFrame`: emitted
    when the run carries a :class:`repro.sim.config.DataPlaneConfig`,
    per-epoch deltas of the store's monotonic counters plus the hint
    queue depth at collection time.  ``levels`` maps a consistency
    level value (``"one"`` / ``"quorum"`` / ``"all"``) to its
    ``(ok_ops, replica_timeouts, stale_copies_observed)`` counts.
    """

    epoch: int
    reads: int
    writes: int
    read_failures: int
    write_failures: int
    replica_timeouts: int
    replica_unreachable: int
    suspects_skipped: int
    stale_observed: int
    read_repairs: int
    handoff_writes: int
    hints_parked: int
    hints_drained: int
    hints_expired: int
    hint_queue_depth: int
    anti_entropy_partitions: int
    anti_entropy_keys: int
    anti_entropy_bytes: int
    levels: Dict[str, Tuple[int, int, int]]

    @property
    def operations(self) -> int:
        return self.reads + self.writes

    @property
    def failures(self) -> int:
        return self.read_failures + self.write_failures

    @property
    def failure_rate(self) -> float:
        attempted = self.operations + self.failures
        if attempted == 0:
            return 0.0
        return self.failures / attempted


#: DataPlaneFrame scalar fields exposed through
#: :meth:`RobustnessLog.data_plane_series`.
DATA_PLANE_FIELDS: Tuple[str, ...] = (
    "epoch", "reads", "writes", "read_failures", "write_failures",
    "replica_timeouts", "replica_unreachable", "suspects_skipped",
    "stale_observed", "read_repairs", "handoff_writes",
    "hints_parked", "hints_drained", "hints_expired",
    "hint_queue_depth", "anti_entropy_partitions", "anti_entropy_keys",
    "anti_entropy_bytes",
)


class RobustnessLog:
    """Per-epoch control-plane frames plus the robustness aggregates.

    List-backed (a run holds a few hundred to a few thousand small
    frames; the columnar treatment the EpochFrame stream needed is not
    warranted here) with the summary statistics ISSUE 6 asks for:
    false-suspicion rate, membership-staleness distribution, wasted
    transfer and retry totals, and per-code message totals.
    """

    def __init__(self) -> None:
        self._frames: List[ControlPlaneFrame] = []
        self._data_frames: List[DataPlaneFrame] = []

    def append(self, frame: ControlPlaneFrame) -> None:
        if self._frames and frame.epoch <= self._frames[-1].epoch:
            raise MetricsError(
                f"non-monotonic epoch {frame.epoch} after "
                f"{self._frames[-1].epoch}"
            )
        self._frames.append(frame)

    def append_data_plane(self, frame: DataPlaneFrame) -> None:
        """Append one epoch's data-plane frame (monotonic epochs)."""
        if (
            self._data_frames
            and frame.epoch <= self._data_frames[-1].epoch
        ):
            raise MetricsError(
                f"non-monotonic data-plane epoch {frame.epoch} after "
                f"{self._data_frames[-1].epoch}"
            )
        self._data_frames.append(frame)

    def __len__(self) -> int:
        return len(self._frames)

    def __iter__(self) -> Iterator[ControlPlaneFrame]:
        return iter(self._frames)

    def __getitem__(self, idx):
        return self._frames[idx]

    @property
    def last(self) -> ControlPlaneFrame:
        if not self._frames:
            raise MetricsError("no control-plane frames collected")
        return self._frames[-1]

    def series(self, name: str) -> np.ndarray:
        if name not in CONTROL_FIELDS and not hasattr(
            ControlPlaneFrame, name
        ):
            raise MetricsError(f"unknown control-plane series {name!r}")
        return np.array(
            [getattr(f, name) for f in self._frames], dtype=np.float64
        )

    def message_totals(self) -> Dict[str, Dict[str, int]]:
        """Per-code cumulative counts over the whole run."""
        totals: Dict[str, List[int]] = {}
        for frame in self._frames:
            for code, row in frame.messages.items():
                agg = totals.setdefault(code, [0, 0, 0, 0])
                for k in range(4):
                    agg[k] += row[k]
        names = ("sent", "delivered", "dropped_loss", "dropped_partition")
        return {
            code: dict(zip(names, agg)) for code, agg in totals.items()
        }

    def false_suspicion_rate(self) -> float:
        """False-suspect server-epochs / live server-epochs.

        The FailureDetector accuracy headline: what fraction of the
        time a physically-live server spent being believed dead.
        """
        suspect_epochs = sum(f.false_suspects for f in self._frames)
        live_epochs = sum(f.actual_live for f in self._frames)
        if live_epochs == 0:
            return 0.0
        return suspect_epochs / live_epochs

    def staleness_distribution(self) -> Dict[str, float]:
        """Mean / p95 / max of the board's membership-view staleness."""
        if not self._frames:
            return {"mean": 0.0, "p95": 0.0, "max": 0.0}
        means = self.series("staleness_mean")
        maxes = self.series("staleness_max")
        return {
            "mean": float(means.mean()),
            "p95": float(np.percentile(means, 95)),
            "max": float(maxes.max()),
        }

    @property
    def data_plane(self) -> List[DataPlaneFrame]:
        """The data-plane frame stream (empty when not collected)."""
        return self._data_frames

    def data_plane_series(self, name: str) -> np.ndarray:
        if name not in DATA_PLANE_FIELDS and not hasattr(
            DataPlaneFrame, name
        ):
            raise MetricsError(f"unknown data-plane series {name!r}")
        return np.array(
            [getattr(f, name) for f in self._data_frames],
            dtype=np.float64,
        )

    def data_plane_summary(self) -> Dict[str, object]:
        """Whole-run data-plane totals plus the per-level breakdown."""
        frames = self._data_frames
        levels: Dict[str, List[int]] = {}
        for frame in frames:
            for level, row in frame.levels.items():
                agg = levels.setdefault(level, [0, 0, 0])
                for k in range(3):
                    agg[k] += row[k]
        totals = {
            name: int(sum(getattr(f, name) for f in frames))
            for name in DATA_PLANE_FIELDS
            if name not in ("epoch", "hint_queue_depth")
        }
        totals["peak_hint_queue_depth"] = int(
            max((f.hint_queue_depth for f in frames), default=0)
        )
        totals["final_hint_queue_depth"] = int(
            frames[-1].hint_queue_depth if frames else 0
        )
        totals["levels"] = {
            level: {"ok": agg[0], "timeouts": agg[1], "stale": agg[2]}
            for level, agg in levels.items()
        }
        return totals

    def summary(self) -> Dict[str, object]:
        """The robustness report block (text render in analysis/)."""
        frames = self._frames
        out = self._control_summary()
        if self._data_frames:
            out["data_plane"] = self.data_plane_summary()
        return out

    def _control_summary(self) -> Dict[str, object]:
        frames = self._frames
        return {
            "epochs": len(frames),
            "false_suspicion_rate": self.false_suspicion_rate(),
            "staleness": self.staleness_distribution(),
            "detections": int(sum(f.detections for f in frames)),
            "wasted_transfers": int(
                sum(f.wasted_transfers for f in frames)
            ),
            "retries": {
                "pushed": int(sum(f.retries_pushed for f in frames)),
                "retried": int(sum(f.retries_retried for f in frames)),
                "succeeded": int(
                    sum(f.retries_succeeded for f in frames)
                ),
                "dropped": int(sum(f.retries_dropped for f in frames)),
            },
            "max_price_version_lag": int(
                max((f.price_version_lag for f in frames), default=0)
            ),
            "peak_conflicting_repair_risk": int(
                max((f.conflicting_repair_risk for f in frames),
                    default=0)
            ),
            "messages": self.message_totals(),
        }


@dataclass(frozen=True, slots=True)
class ServingFrame:
    """One epoch's live-serving observables (front-door runs).

    Emitted by :class:`repro.serve.frontend.ServingFrontEnd` when the
    run carries a :class:`repro.sim.config.ServingConfig`: the request
    throughput, the read/write latency tails (p50/p99/p999 over the
    epoch's costed per-request latencies) and the SLA violation deltas.
    Like the control- and data-plane frames it rides alongside the
    :class:`EpochFrame` stream without touching it — the goldens stay
    byte-identical whether serving is on or off.
    """

    epoch: int
    requests: int
    reads: int
    writes: int
    read_failures: int
    write_failures: int
    sla_read_violations: int
    sla_write_violations: int
    requests_per_sec: float
    read_p50_ms: float
    read_p99_ms: float
    read_p999_ms: float
    write_p50_ms: float
    write_p99_ms: float
    write_p999_ms: float
    mean_queue_ms: float

    @property
    def failures(self) -> int:
        return self.read_failures + self.write_failures

    @property
    def sla_violations(self) -> int:
        return self.sla_read_violations + self.sla_write_violations


#: ServingFrame scalar fields by storage class, in field order.
SERVING_INT_FIELDS: Tuple[str, ...] = (
    "epoch", "requests", "reads", "writes", "read_failures",
    "write_failures", "sla_read_violations", "sla_write_violations",
)
SERVING_FLOAT_FIELDS: Tuple[str, ...] = (
    "requests_per_sec", "read_p50_ms", "read_p99_ms", "read_p999_ms",
    "write_p50_ms", "write_p99_ms", "write_p999_ms", "mean_queue_ms",
)


class ServingLog:
    """Columnar store for a :class:`ServingFrame` stream.

    The serving front door emits one small all-scalar frame per epoch,
    so the whole stream packs into one int64/float64 column per field —
    the same treatment the EpochFrame scalars get — with exact row
    round trips through :meth:`frame`.
    """

    __slots__ = ("_ints", "_floats")

    def __init__(self) -> None:
        self._ints: Dict[str, GrowableColumn] = {
            name: GrowableColumn(np.int64) for name in SERVING_INT_FIELDS
        }
        self._floats: Dict[str, GrowableColumn] = {
            name: GrowableColumn(np.float64)
            for name in SERVING_FLOAT_FIELDS
        }

    def __len__(self) -> int:
        return len(self._ints["epoch"])

    def append(self, frame: ServingFrame) -> None:
        epochs = self._ints["epoch"]
        if len(epochs) and frame.epoch <= int(epochs[len(epochs) - 1]):
            raise MetricsError(
                f"non-monotonic serving epoch {frame.epoch} after "
                f"{int(epochs[len(epochs) - 1])}"
            )
        for name, column in self._ints.items():
            column.append(int(getattr(frame, name)))
        for name, column in self._floats.items():
            column.append(float(getattr(frame, name)))

    def frame(self, index: int) -> ServingFrame:
        n = len(self)
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError(
                f"serving frame index {index} out of range ({n})"
            )
        fields: Dict[str, object] = {
            name: int(column[index]) for name, column in self._ints.items()
        }
        for name, column in self._floats.items():
            fields[name] = float(column[index])
        return ServingFrame(**fields)

    def __iter__(self) -> Iterator[ServingFrame]:
        return (self.frame(i) for i in range(len(self)))

    def __getitem__(self, idx):
        if isinstance(idx, slice):
            return [
                self.frame(i) for i in range(*idx.indices(len(self)))
            ]
        return self.frame(idx)

    @property
    def last(self) -> ServingFrame:
        if not len(self):
            raise MetricsError("no serving frames collected")
        return self.frame(len(self) - 1)

    def series(self, name: str) -> np.ndarray:
        """One scalar field over all epochs, as float64 (fresh array)."""
        column = self._ints.get(name)
        if column is None:
            column = self._floats.get(name)
        if column is None:
            if not hasattr(ServingFrame, name):
                raise MetricsError(f"unknown serving series {name!r}")
            return np.array(
                [getattr(f, name) for f in self], dtype=np.float64
            )
        return column.view().astype(np.float64)

    def summary(self) -> Dict[str, object]:
        """Whole-run serving totals plus steady-state tail medians."""
        if not len(self):
            return {"epochs": 0}
        totals = {
            name: int(self._ints[name].view().sum())
            for name in SERVING_INT_FIELDS
            if name != "epoch"
        }
        out: Dict[str, object] = {"epochs": len(self)}
        out.update(totals)
        out["mean_requests_per_sec"] = float(
            self.series("requests_per_sec").mean()
        )
        # Median-of-epochs keeps a single fault window from dominating
        # the headline tails.
        for name in ("read_p50_ms", "read_p99_ms", "read_p999_ms",
                     "write_p50_ms", "write_p99_ms", "write_p999_ms"):
            out[name] = float(np.median(self.series(name)))
        out["peak_read_p999_ms"] = float(
            self.series("read_p999_ms").max()
        )
        out["peak_write_p999_ms"] = float(
            self.series("write_p999_ms").max()
        )
        requests = totals["requests"]
        violations = (
            totals["sla_read_violations"] + totals["sla_write_violations"]
        )
        out["sla_attainment"] = (
            1.0 - violations / requests if requests else 1.0
        )
        return out

    @property
    def nbytes(self) -> int:
        total = sum(c.nbytes for c in self._ints.values())
        total += sum(c.nbytes for c in self._floats.values())
        return total


def load_balance_index(loads: Sequence[float]) -> float:
    """Jain's fairness index of per-server loads: 1.0 = perfectly even.

    Used to quantify the Fig. 4 claim that "the query load per server
    remains quite balanced despite the variations in the total load".
    """
    arr = np.asarray(list(loads), dtype=np.float64)
    if arr.size == 0:
        return 1.0
    total = arr.sum()
    if total == 0:
        return 1.0
    return float(total * total / (arr.size * np.square(arr).sum()))
