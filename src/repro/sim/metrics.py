"""Per-epoch metric collection for the paper's figures.

Each epoch the engine emits one :class:`EpochFrame` holding exactly the
observables the evaluation plots: virtual nodes per server (Fig. 2),
virtual nodes per ring (Fig. 3), average query load per ring per server
(Fig. 4) and storage usage plus insert failures (Fig. 5) — along with
economic diagnostics (prices, actions, availability satisfaction) the
ablation benches use.  :class:`MetricsLog` turns the frame stream into
named series.

Storage is *columnar*: :class:`MetricsLog` keeps a :class:`FrameStore`
— every scalar field as one growable array, the per-server vnode
histogram as one compact count vector per epoch sharing a per-version
server-id tuple — instead of a list of frames full of dicts.  At
20 000 servers a stored ``{sid: count}`` dict dominated frame memory;
the column store holds the same information in one int64 vector per
epoch.  :class:`EpochFrame` remains the frame API: reads materialize a
lightweight row view whose ``vnodes_per_server`` is a lazy
:class:`ServerVnodeHistogram` mapping over the stored arrays, so
``framedump``, the goldens, reporting and the examples see
byte-identical streams.

The frame stream is the epoch kernels' equivalence contract: a seeded
run must emit bit-identical frames under the vectorized and scalar
kernels (``tests/integration/test_kernel_equivalence.py``).  Under the
vectorized kernel every per-ring aggregate is gathered from the
maintained per-partition vectors — the epoch load's dense query
counts and the availability store's eq. 2 / replica-count vectors
(``Simulation._collect``) — in the same ring order the scalar loop
visits, which is what keeps the aggregates exact.
"""

from __future__ import annotations

import sys
from collections.abc import Mapping
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np


class MetricsError(KeyError):
    """Raised when a requested series is unavailable."""


class ServerVnodeHistogram(Mapping):
    """Lazy ``{server_id: vnode count}`` view over two arrays.

    The Fig. 2 observable without the dict: a shared server-id tuple
    (one per cloud-membership version, not per epoch) plus one compact
    count vector.  Behaves like the dict the engine used to build —
    same iteration order (slot order), same items, equality against
    plain dicts — while storing no per-entry objects.
    """

    __slots__ = ("_ids", "_counts", "_index")

    def __init__(self, server_ids: Tuple[int, ...],
                 counts: np.ndarray) -> None:
        if len(server_ids) != len(counts):
            raise MetricsError(
                f"histogram mismatch: {len(server_ids)} ids, "
                f"{len(counts)} counts"
            )
        self._ids = tuple(server_ids)
        self._counts = counts
        self._index: Optional[Dict[int, int]] = None

    @property
    def server_ids(self) -> Tuple[int, ...]:
        return self._ids

    @property
    def counts(self) -> np.ndarray:
        """The per-server count vector, slot order (do not mutate)."""
        return self._counts

    def _lookup(self) -> Dict[int, int]:
        index = self._index
        if index is None:
            index = {sid: i for i, sid in enumerate(self._ids)}
            self._index = index
        return index

    def __getitem__(self, server_id: int) -> int:
        idx = self._lookup().get(server_id)
        if idx is None:
            raise KeyError(server_id)
        return int(self._counts[idx])

    def __iter__(self) -> Iterator[int]:
        return iter(self._ids)

    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, server_id: object) -> bool:
        return server_id in self._lookup()
    # keys()/values()/items() come from Mapping: proper dict-view
    # objects (set operations on keys() keep working), whose iteration
    # goes through __getitem__ and therefore yields Python ints — which
    # is what the framedump codec requires.


@dataclass(frozen=True, slots=True)
class EpochFrame:
    """One epoch's observables (a row view when read from the log)."""

    epoch: int
    total_queries: int
    live_servers: int
    vnodes_total: int
    vnodes_per_ring: Dict[Tuple[int, int], int]
    vnodes_per_server: Mapping
    queries_per_ring: Dict[Tuple[int, int], float]
    mean_availability_per_ring: Dict[Tuple[int, int], float]
    unsatisfied_partitions: int
    lost_partitions: int
    storage_used: int
    storage_capacity: int
    insert_attempts: int
    insert_failures: int
    repairs: int
    economic_replications: int
    migrations: int
    suicides: int
    deferred: int
    min_price: float
    mean_price: float
    max_price: float
    unavailable_queries: int
    vnodes_on_expensive: int
    vnodes_on_cheap: int
    replication_bytes: int = 0
    migration_bytes: int = 0

    @property
    def bytes_moved(self) -> int:
        """Maintenance traffic over access links this epoch."""
        return self.replication_bytes + self.migration_bytes

    @property
    def storage_fraction(self) -> float:
        if self.storage_capacity == 0:
            return 0.0
        return self.storage_used / self.storage_capacity

    def query_load_per_server(self, ring: Tuple[int, int]) -> float:
        """Fig. 4 observable: a ring's queries averaged over live servers."""
        if self.live_servers == 0:
            return 0.0
        return self.queries_per_ring.get(ring, 0.0) / self.live_servers


#: EpochFrame scalar fields by storage class, in field order.
INT_FIELDS: Tuple[str, ...] = (
    "epoch", "total_queries", "live_servers", "vnodes_total",
    "unsatisfied_partitions", "lost_partitions", "storage_used",
    "storage_capacity", "insert_attempts", "insert_failures", "repairs",
    "economic_replications", "migrations", "suicides", "deferred",
    "unavailable_queries", "vnodes_on_expensive", "vnodes_on_cheap",
    "replication_bytes", "migration_bytes",
)
FLOAT_FIELDS: Tuple[str, ...] = ("min_price", "mean_price", "max_price")
RING_FIELDS: Tuple[str, ...] = (
    "vnodes_per_ring", "queries_per_ring", "mean_availability_per_ring",
)


class _Column:
    """A growable typed array (append-only)."""

    __slots__ = ("_arr", "_n")

    def __init__(self, dtype) -> None:
        self._arr = np.zeros(16, dtype=dtype)
        self._n = 0

    def append(self, value) -> None:
        if self._n >= len(self._arr):
            grown = np.zeros(2 * len(self._arr), dtype=self._arr.dtype)
            grown[: self._n] = self._arr
            self._arr = grown
        self._arr[self._n] = value
        self._n += 1

    def __len__(self) -> int:
        return self._n

    def __getitem__(self, i: int):
        return self._arr[i]

    def view(self) -> np.ndarray:
        """The live prefix (do not mutate; re-fetch after appends)."""
        return self._arr[: self._n]

    @property
    def nbytes(self) -> int:
        return self._arr.nbytes


class FrameStore:
    """Columnar backing store for an :class:`EpochFrame` stream.

    Scalar fields live in growable int64/float64 columns; the per-ring
    dicts (a handful of entries each) are kept per epoch as-is; the
    per-server vnode histogram is stored as one count vector per epoch
    plus a server-id tuple shared across epochs of one cloud-membership
    version.  :meth:`frame` materializes a row view on demand — round
    trips are exact (int64/float64 hold every value the engine emits),
    so a stored stream serializes byte-identically to the frames it was
    appended from.
    """

    __slots__ = ("_ints", "_floats", "_rings", "_hist_ids", "_hist_counts")

    def __init__(self) -> None:
        self._ints: Dict[str, _Column] = {
            name: _Column(np.int64) for name in INT_FIELDS
        }
        self._floats: Dict[str, _Column] = {
            name: _Column(np.float64) for name in FLOAT_FIELDS
        }
        self._rings: Dict[str, List[Dict]] = {
            name: [] for name in RING_FIELDS
        }
        self._hist_ids: List[Tuple[int, ...]] = []
        self._hist_counts: List[np.ndarray] = []

    def __len__(self) -> int:
        return len(self._ints["epoch"])

    def append(self, frame: EpochFrame) -> None:
        for name, column in self._ints.items():
            column.append(int(getattr(frame, name)))
        for name, column in self._floats.items():
            column.append(float(getattr(frame, name)))
        for name, stored in self._rings.items():
            stored.append(getattr(frame, name))
        hist = frame.vnodes_per_server
        if isinstance(hist, ServerVnodeHistogram):
            ids, counts = hist.server_ids, hist.counts
        else:
            ids = tuple(hist)
            counts = np.fromiter(
                (hist[sid] for sid in ids), dtype=np.int64, count=len(ids)
            )
        # Share the id tuple with the previous epoch when membership
        # did not change — the common case, and what keeps the store's
        # footprint one count vector per epoch.
        if self._hist_ids and self._hist_ids[-1] == ids:
            ids = self._hist_ids[-1]
        self._hist_ids.append(ids)
        self._hist_counts.append(counts)

    def frame(self, index: int) -> EpochFrame:
        """Materialize one epoch as a row view (lazy histogram)."""
        n = len(self)
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError(f"frame index {index} out of range ({n})")
        fields: Dict[str, object] = {
            name: int(column[index]) for name, column in self._ints.items()
        }
        for name, column in self._floats.items():
            fields[name] = float(column[index])
        for name, stored in self._rings.items():
            fields[name] = stored[index]
        fields["vnodes_per_server"] = ServerVnodeHistogram(
            self._hist_ids[index], self._hist_counts[index]
        )
        return EpochFrame(**fields)

    def has_column(self, name: str) -> bool:
        return name in self._ints or name in self._floats

    @property
    def last_epoch(self) -> int:
        if not len(self):
            raise MetricsError("no frames collected")
        return int(self._ints["epoch"][len(self) - 1])

    def column(self, name: str) -> np.ndarray:
        """One scalar field over all epochs, as float64 (fresh array)."""
        column = self._ints.get(name)
        if column is None:
            column = self._floats.get(name)
        if column is None:
            raise MetricsError(f"unknown column {name!r}")
        return column.view().astype(np.float64)

    def int_column_total(self, name: str) -> int:
        """Exact Python-int sum of one int column (no float64 cast).

        Byte counters can cross 2^53 over a long 100×-scale run, where
        a float64 sum silently loses integer exactness.
        """
        column = self._ints.get(name)
        if column is None:
            raise MetricsError(f"unknown int column {name!r}")
        return int(sum(int(v) for v in column.view().tolist()))

    def ring_dicts(self, name: str) -> List[Dict]:
        if name not in self._rings:
            raise MetricsError(f"unknown ring field {name!r}")
        return self._rings[name]

    def histogram(self, index: int) -> ServerVnodeHistogram:
        if index < 0:
            index += len(self)
        return ServerVnodeHistogram(
            self._hist_ids[index], self._hist_counts[index]
        )

    @property
    def nbytes(self) -> int:
        """Approximate resident bytes of the stored stream.

        Counts every column array, each epoch's histogram vector, the
        shared id tuples (once per distinct tuple) and the small
        per-ring dicts — the store only grows, so the value at the end
        of a run is its peak.
        """
        total = sum(c.nbytes for c in self._ints.values())
        total += sum(c.nbytes for c in self._floats.values())
        total += sum(counts.nbytes for counts in self._hist_counts)
        seen = set()
        for ids in self._hist_ids:
            if id(ids) not in seen:
                seen.add(id(ids))
                total += sys.getsizeof(ids)
        for stored in self._rings.values():
            total += sum(sys.getsizeof(d) for d in stored)
        return total


class MetricsLog:
    """Ordered frames plus series extraction helpers (column-backed)."""

    def __init__(self) -> None:
        self._store = FrameStore()

    @property
    def store(self) -> FrameStore:
        """The columnar backing store (read-only by contract)."""
        return self._store

    @property
    def nbytes(self) -> int:
        """Peak resident bytes of the stored frame stream."""
        return self._store.nbytes

    def append(self, frame: EpochFrame) -> None:
        store = self._store
        if len(store) and frame.epoch <= store.last_epoch:
            raise MetricsError(
                f"non-monotonic epoch {frame.epoch} after "
                f"{store.last_epoch}"
            )
        store.append(frame)

    def __len__(self) -> int:
        return len(self._store)

    def __iter__(self) -> Iterator[EpochFrame]:
        store = self._store
        return (store.frame(i) for i in range(len(store)))

    def __getitem__(self, idx):
        if isinstance(idx, slice):
            return [
                self._store.frame(i)
                for i in range(*idx.indices(len(self._store)))
            ]
        return self._store.frame(idx)

    @property
    def last(self) -> EpochFrame:
        if not len(self._store):
            raise MetricsError("no frames collected")
        return self._store.frame(len(self._store) - 1)

    def epochs(self) -> List[int]:
        return [int(e) for e in self._store.column("epoch")]

    def series(self, name: str) -> np.ndarray:
        """A scalar attribute of every frame as an array."""
        store = self._store
        if not len(store):
            raise MetricsError("no frames collected")
        if store.has_column(name):
            return store.column(name)
        # Derived attributes (properties) fall back to materialization.
        if not hasattr(EpochFrame, name):
            raise MetricsError(f"unknown series {name!r}")
        return np.array(
            [getattr(frame, name) for frame in self], dtype=np.float64
        )

    def ring_series(self, attr: str, ring: Tuple[int, int]) -> np.ndarray:
        """A per-ring dict attribute projected onto one ring."""
        out = [
            mapping.get(ring, 0) for mapping in self._store.ring_dicts(attr)
        ]
        return np.array(out, dtype=np.float64)

    def rings(self) -> List[Tuple[int, int]]:
        seen: Dict[Tuple[int, int], None] = {}
        for mapping in self._store.ring_dicts("vnodes_per_ring"):
            for ring in mapping:
                seen.setdefault(ring, None)
        return sorted(seen)

    def query_load_series(self, ring: Tuple[int, int]) -> np.ndarray:
        """Fig. 4 series: average per-server query load of one ring."""
        live = self._store.column("live_servers")
        queries = self._store.ring_dicts("queries_per_ring")
        out = [
            (queries[i].get(ring, 0.0) / live[i]) if live[i] else 0.0
            for i in range(len(self._store))
        ]
        return np.array(out, dtype=np.float64)

    def vnode_histogram(self, epoch_index: int = -1) -> Mapping:
        """Fig. 2 snapshot: vnodes per server at one epoch.

        Returns the stored histogram *view* (a read-only mapping over
        the count vector) — no O(S) dict copy per access.
        """
        return self._store.histogram(epoch_index)

    def vnode_counts(self, epoch_index: int = -1) -> np.ndarray:
        """One epoch's per-server vnode counts, slot order (read-only)."""
        return self._store.histogram(epoch_index).counts

    def storage_fraction_series(self) -> np.ndarray:
        used = self._store.column("storage_used")
        cap = self._store.column("storage_capacity")
        out = np.zeros(len(used), dtype=np.float64)
        nonzero = cap > 0
        np.divide(used, cap, out=out, where=nonzero)
        return out

    def cumulative_insert_failures(self) -> np.ndarray:
        return np.cumsum(self.series("insert_failures"))

    def total_rent_paid(self) -> float:
        """Sum over epochs of mean price × vnodes — total cost proxy."""
        return float(
            (
                self._store.column("mean_price")
                * self._store.column("vnodes_total")
            ).sum()
        )

    def total_bytes_moved(self) -> int:
        """Cumulative maintenance traffic (replication + migration).

        Summed over exact integers — byte totals outgrow float64's
        53-bit mantissa on long 100×-scale runs.
        """
        return (
            self._store.int_column_total("replication_bytes")
            + self._store.int_column_total("migration_bytes")
        )

    def action_totals(self) -> Dict[str, int]:
        return {
            "repairs": int(self.series("repairs").sum()),
            "economic_replications": int(
                self.series("economic_replications").sum()
            ),
            "migrations": int(self.series("migrations").sum()),
            "suicides": int(self.series("suicides").sum()),
            "deferred": int(self.series("deferred").sum()),
        }


def load_balance_index(loads: Sequence[float]) -> float:
    """Jain's fairness index of per-server loads: 1.0 = perfectly even.

    Used to quantify the Fig. 4 claim that "the query load per server
    remains quite balanced despite the variations in the total load".
    """
    arr = np.asarray(list(loads), dtype=np.float64)
    if arr.size == 0:
        return 1.0
    total = arr.sum()
    if total == 0:
        return 1.0
    return float(total * total / (arr.size * np.square(arr).sum()))
