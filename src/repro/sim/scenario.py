"""Declarative scenario specs: tiered, validated, compiled to configs.

ROADMAP item 3 (the SNIPPETS.md snippet 3 decomposition): a scenario is
*data* — five tiered sections instead of a hand-built factory —

* **structure** — cloud shape (explicit layout or paper scale) and the
  server classes (rent split, storage/query capacity, confidence
  distribution);
* **flows** — composable workload phases: the base Poisson rate,
  flash-crowd surges, diurnal cycles, the Fig. 5 insert stream, and
  zipf data-plane client traffic;
* **constraints** — tenants with per-tier SLAs (replicas, thresholds,
  partition geometry), bandwidth budgets, and the economic policy /
  rent-model knobs;
* **failure** — membership events (join/leave waves, scoped outages)
  plus the control-plane fault schedule (loss, delay, partitions,
  flaps) or a seeded chaos draw;
* **operations** — horizon, master seed, epoch kernel, equivalence
  tolerance and the consistency-audit toggle.

:func:`compile_spec` lowers a spec *deterministically* onto today's
runtime objects (:class:`repro.sim.config.SimConfig`,
:class:`repro.cluster.events.EventSchedule`,
:class:`repro.net.model.NetConfig`,
:class:`repro.sim.config.DataPlaneConfig`): compiling the same spec
twice yields equal configs and byte-identical frame streams.  The
seven legacy golden scenarios are expressed as specs in
:mod:`repro.sim.specs` and compile to *exactly* the configs their
hand-built factories produced (pinned by tests/sim/test_scenario_spec
and the golden suite itself).

Specs round-trip losslessly through plain dicts/JSON
(:meth:`ScenarioSpec.to_dict` / :meth:`ScenarioSpec.from_dict`), which
is what the CLI's ``scenario run <path>`` and the examples' ``--spec``
dumps ride on.  :func:`sample_spec` draws seeded random specs — the
randomized equivalence/invariant harnesses sample *this* space instead
of ad-hoc knobs.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.cluster.confidence import ConfidenceModel
from repro.cluster.events import (
    AddServers,
    EventSchedule,
    RemoveServers,
    ScopedOutage,
)
from repro.cluster.server import GB, MB
from repro.cluster.topology import CloudLayout
from repro.core.availability import paper_thresholds
from repro.core.decision import KERNELS, EconomicPolicy
from repro.core.economy import RentModel
from repro.net.model import LinkFlap, NetConfig, NetPartition
from repro.sim.config import (
    AppConfig,
    DataPlaneConfig,
    InsertConfig,
    RingConfig,
    ServingConfig,
    SimConfig,
    paper_apps_config,
    scaled_paper_layout,
)
from repro.sim.seeds import RngStreams
from repro.workload.arrivals import RateProfile
from repro.workload.clients import ClientGeography, hotspot, mixture
from repro.workload.slashdot import slashdot_profile


class SpecError(ValueError):
    """Raised for invalid or inconsistent scenario specs."""


# ---------------------------------------------------------------------------
# dict <-> dataclass plumbing (strict: unknown keys are errors)
# ---------------------------------------------------------------------------


def _build(cls, data: Mapping, parsers: Optional[Dict[str, Callable]] = None):
    """Construct ``cls`` from a mapping, rejecting unknown keys."""
    if not isinstance(data, Mapping):
        raise SpecError(
            f"{cls.__name__} section must be a mapping, got "
            f"{type(data).__name__}"
        )
    names = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(data) - names)
    if unknown:
        raise SpecError(f"{cls.__name__}: unknown keys {unknown}")
    kwargs = {}
    for f in dataclasses.fields(cls):
        if f.name not in data:
            continue
        raw = data[f.name]
        parse = (parsers or {}).get(f.name)
        kwargs[f.name] = parse(raw) if parse is not None else raw
    try:
        return cls(**kwargs)
    except SpecError:
        raise
    except (TypeError, ValueError) as exc:
        raise SpecError(f"{cls.__name__}: {exc}") from exc


def _plain(value: Any) -> Any:
    """Spec value -> JSON-able plain data (dicts keep int keys as pairs)."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        out = {}
        for f in dataclasses.fields(value):
            out[f.name] = _plain(getattr(value, f.name))
        if isinstance(value, _EVENT_TYPES):
            out["kind"] = _EVENT_KINDS[type(value)]
        return out
    if isinstance(value, dict):
        return [[_plain(k), _plain(v)] for k, v in sorted(value.items())]
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    return value


def _pairs_to_dict(raw: Any, key_type=int) -> Dict:
    """Inverse of the pair-list dict encoding (accepts mappings too)."""
    if isinstance(raw, Mapping):
        return {key_type(k): v for k, v in raw.items()}
    return {key_type(k): v for k, v in raw}


# ---------------------------------------------------------------------------
# Tier 1 — structure
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LayoutSpec:
    """An explicit cloud shape (mirrors :class:`CloudLayout`)."""

    countries: int = 10
    countries_per_continent: int = 2
    datacenters_per_country: int = 2
    rooms_per_datacenter: int = 1
    racks_per_room: int = 2
    servers_per_rack: int = 5

    def __post_init__(self) -> None:
        for f in dataclasses.fields(self):
            if getattr(self, f.name) < 1:
                raise SpecError(f"layout.{f.name} must be >= 1")

    def compile(self) -> CloudLayout:
        return CloudLayout(**dataclasses.asdict(self))

    @classmethod
    def from_dict(cls, data: Mapping) -> "LayoutSpec":
        return _build(cls, data)


@dataclass(frozen=True)
class ServerClassesSpec:
    """Heterogeneous server classes: the rent split and per-box capacity."""

    cheap_rent: float = 100.0
    expensive_rent: float = 125.0
    expensive_fraction: float = 0.3
    storage: int = 5 * GB
    query_capacity: int = 1000

    def __post_init__(self) -> None:
        if self.cheap_rent < 0 or self.expensive_rent < 0:
            raise SpecError("rents must be >= 0")
        if not 0.0 <= self.expensive_fraction <= 1.0:
            raise SpecError(
                f"expensive_fraction must be in [0, 1], got "
                f"{self.expensive_fraction}"
            )
        if self.storage <= 0:
            raise SpecError(f"storage must be > 0, got {self.storage}")
        if self.query_capacity <= 0:
            raise SpecError(
                f"query_capacity must be > 0, got {self.query_capacity}"
            )

    @classmethod
    def from_dict(cls, data: Mapping) -> "ServerClassesSpec":
        return _build(cls, data)


@dataclass(frozen=True)
class ConfidenceSpec:
    """Per-country trust tiers (eq. 2 weights)."""

    base: float = 1.0
    country_factors: Dict[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 <= self.base <= 1.0:
            raise SpecError(f"confidence base must be in [0, 1], got {self.base}")
        for country, factor in self.country_factors.items():
            if not 0.0 <= factor <= 1.0:
                raise SpecError(
                    f"confidence factor for country {country} must be in "
                    f"[0, 1], got {factor}"
                )

    def compile(self) -> ConfidenceModel:
        return ConfidenceModel(
            base=self.base, country_factors=dict(self.country_factors)
        )

    @classmethod
    def from_dict(cls, data: Mapping) -> "ConfidenceSpec":
        return _build(cls, data, {"country_factors": _pairs_to_dict})


@dataclass(frozen=True)
class StructureSpec:
    """Tier 1: cloud shape and server classes."""

    scale: int = 1
    layout: Optional[LayoutSpec] = None
    classes: ServerClassesSpec = field(default_factory=ServerClassesSpec)
    confidence: Optional[ConfidenceSpec] = None

    def __post_init__(self) -> None:
        if self.scale < 1:
            raise SpecError(f"scale must be >= 1, got {self.scale}")
        if self.layout is not None and self.scale != 1:
            raise SpecError("give either an explicit layout or a scale, not both")

    def compile_layout(self) -> CloudLayout:
        if self.layout is not None:
            return self.layout.compile()
        return scaled_paper_layout(self.scale)

    @classmethod
    def from_dict(cls, data: Mapping) -> "StructureSpec":
        return _build(cls, data, {
            "layout": lambda raw: None if raw is None
            else LayoutSpec.from_dict(raw),
            "classes": ServerClassesSpec.from_dict,
            "confidence": lambda raw: None if raw is None
            else ConfidenceSpec.from_dict(raw),
        })


# ---------------------------------------------------------------------------
# Tier 2 — flows
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FlashCrowd:
    """One Slashdot-style surge: linear ramp to ``peak_factor``× then decay."""

    spike_epoch: int
    ramp_epochs: int
    decay_epochs: int
    peak_factor: float

    def __post_init__(self) -> None:
        if self.spike_epoch < 0:
            raise SpecError(f"spike_epoch must be >= 0, got {self.spike_epoch}")
        if self.ramp_epochs <= 0 or self.decay_epochs <= 0:
            raise SpecError("ramp_epochs and decay_epochs must be > 0")
        if self.peak_factor < 1.0:
            raise SpecError(
                f"peak_factor must be >= 1, got {self.peak_factor}"
            )

    @property
    def window(self) -> Tuple[int, int]:
        """The [start, end) epoch span the surge shapes."""
        return (
            self.spike_epoch,
            self.spike_epoch + self.ramp_epochs + self.decay_epochs,
        )

    @classmethod
    def from_dict(cls, data: Mapping) -> "FlashCrowd":
        return _build(cls, data)


@dataclass(frozen=True)
class Diurnal:
    """A sinusoidal day/night cycle multiplying the base rate."""

    period: int = 24
    amplitude: float = 0.5
    phase: int = 0

    def __post_init__(self) -> None:
        if self.period < 2:
            raise SpecError(f"period must be >= 2, got {self.period}")
        if not 0.0 <= self.amplitude <= 1.0:
            raise SpecError(
                f"amplitude must be in [0, 1], got {self.amplitude}"
            )

    @classmethod
    def from_dict(cls, data: Mapping) -> "Diurnal":
        return _build(cls, data)


@dataclass(frozen=True)
class InsertStream:
    """The Fig. 5 insert stream (mirrors :class:`InsertConfig`)."""

    rate: int = 2000
    object_size: int = 500 * 1024
    start_epoch: int = 0
    routing: str = "keyspace"

    def compile(self) -> InsertConfig:
        return InsertConfig(**dataclasses.asdict(self))

    def __post_init__(self) -> None:
        self.compile()  # delegate validation to InsertConfig

    @classmethod
    def from_dict(cls, data: Mapping) -> "InsertStream":
        return _build(cls, data)


@dataclass(frozen=True)
class ClientTraffic:
    """Zipf-keyed data-plane traffic (mirrors :class:`DataPlaneConfig`)."""

    level: str = "quorum"
    ops_per_epoch: int = 48
    read_fraction: float = 0.6
    keyspace: int = 96
    value_size: int = 64
    hint_ttl: int = 32
    hint_base_delay: int = 1
    hint_backoff_cap: int = 8
    anti_entropy_partitions: int = 8
    anti_entropy_bytes: int = 1 << 20
    read_repair: bool = True

    def compile(self) -> DataPlaneConfig:
        return DataPlaneConfig(**dataclasses.asdict(self))

    def __post_init__(self) -> None:
        self.compile()  # delegate validation to DataPlaneConfig

    @classmethod
    def from_dict(cls, data: Mapping) -> "ClientTraffic":
        return _build(cls, data)


@dataclass(frozen=True)
class ServingTraffic:
    """Live-serving front-door load (mirrors :class:`ServingConfig`)."""

    level: str = "quorum"
    requests_per_epoch: int = 512
    read_fraction: float = 0.9
    keyspace: int = 256
    value_size: int = 64
    workers: int = 128
    epoch_ms: float = 1000.0
    timeout_penalty_ms: float = 250.0
    sla_read_ms: float = 250.0
    sla_write_ms: float = 400.0
    hint_ttl: int = 32
    hint_base_delay: int = 1
    hint_backoff_cap: int = 8
    anti_entropy_partitions: int = 8
    anti_entropy_bytes: int = 1 << 20
    read_repair: bool = True

    def compile(self) -> ServingConfig:
        return ServingConfig(**dataclasses.asdict(self))

    def __post_init__(self) -> None:
        self.compile()  # delegate validation to ServingConfig

    @classmethod
    def from_dict(cls, data: Mapping) -> "ServingTraffic":
        return _build(cls, data)


@dataclass(frozen=True)
class ComposedProfile:
    """Base rate × diurnal cycle × every surge multiplier.

    Used only when the flow set needs genuine composition; the single
    flash-crowd case compiles to the paper's
    :func:`repro.workload.slashdot.slashdot_profile` bit-for-bit.
    """

    base_rate: float
    surges: Tuple[FlashCrowd, ...] = ()
    diurnal: Optional[Diurnal] = None

    def _surge_multiplier(self, surge: FlashCrowd, epoch: int) -> float:
        t0 = surge.spike_epoch
        t1 = t0 + surge.ramp_epochs
        t2 = t1 + surge.decay_epochs
        if epoch <= t0 or epoch >= t2:
            return 1.0
        if epoch <= t1:
            frac = (epoch - t0) / (t1 - t0)
            return 1.0 + frac * (surge.peak_factor - 1.0)
        frac = (epoch - t1) / (t2 - t1)
        return surge.peak_factor + frac * (1.0 - surge.peak_factor)

    def __call__(self, epoch: int) -> float:
        rate = self.base_rate
        if self.diurnal is not None:
            angle = (
                2.0 * np.pi * (epoch - self.diurnal.phase)
                / self.diurnal.period
            )
            rate *= 1.0 + self.diurnal.amplitude * float(np.sin(angle))
        for surge in self.surges:
            rate *= self._surge_multiplier(surge, epoch)
        return rate


@dataclass(frozen=True)
class FlowsSpec:
    """Tier 2: the composable workload phases."""

    base_rate: float = 3000.0
    surges: Tuple[FlashCrowd, ...] = ()
    diurnal: Optional[Diurnal] = None
    inserts: Optional[InsertStream] = None
    traffic: Optional[ClientTraffic] = None
    serving: Optional[ServingTraffic] = None
    popularity_shape: float = 1.0
    popularity_scale: float = 50.0

    def __post_init__(self) -> None:
        if self.base_rate < 0:
            raise SpecError(f"base_rate must be >= 0, got {self.base_rate}")
        windows = sorted(s.window for s in self.surges)
        for (_, end), (start, _) in zip(windows, windows[1:]):
            if start < end:
                raise SpecError(
                    f"overlapping surge phases: epoch {start} < {end}"
                )

    def compile_profile(self) -> Optional[RateProfile]:
        """The rate profile, or None for a constant base rate.

        A single surge with no diurnal cycle lowers onto the paper's
        own :func:`slashdot_profile` so legacy scenarios stay
        float-for-float identical; anything composite uses
        :class:`ComposedProfile`.
        """
        if not self.surges and self.diurnal is None:
            return None
        if len(self.surges) == 1 and self.diurnal is None:
            surge = self.surges[0]
            return slashdot_profile(
                base_rate=self.base_rate,
                peak_rate=self.base_rate * surge.peak_factor,
                spike_epoch=surge.spike_epoch,
                ramp_epochs=surge.ramp_epochs,
                decay_epochs=surge.decay_epochs,
            )
        return ComposedProfile(
            base_rate=self.base_rate,
            surges=tuple(sorted(self.surges, key=lambda s: s.spike_epoch)),
            diurnal=self.diurnal,
        )

    @classmethod
    def from_dict(cls, data: Mapping) -> "FlowsSpec":
        return _build(cls, data, {
            "surges": lambda raw: tuple(
                FlashCrowd.from_dict(s) for s in raw
            ),
            "diurnal": lambda raw: None if raw is None
            else Diurnal.from_dict(raw),
            "inserts": lambda raw: None if raw is None
            else InsertStream.from_dict(raw),
            "traffic": lambda raw: None if raw is None
            else ClientTraffic.from_dict(raw),
            "serving": lambda raw: None if raw is None
            else ServingTraffic.from_dict(raw),
        })


# ---------------------------------------------------------------------------
# Tier 3 — constraints
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GeoSpec:
    """A client geography: uniform, a country hotspot, or a mixture."""

    kind: str = "uniform"
    country: int = 0
    concentration: float = 0.8
    components: Tuple[Tuple["GeoSpec", float], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in ("uniform", "hotspot", "mixture"):
            raise SpecError(
                f"geography kind must be 'uniform', 'hotspot' or "
                f"'mixture', got {self.kind!r}"
            )
        if self.kind == "mixture" and not self.components:
            raise SpecError("mixture geography needs components")
        if self.kind == "hotspot" and self.country < 0:
            raise SpecError(f"country must be >= 0, got {self.country}")

    def compile(self, layout: CloudLayout) -> ClientGeography:
        if self.kind == "uniform":
            return ClientGeography()
        if self.kind == "hotspot":
            if self.country >= layout.countries:
                raise SpecError(
                    f"hotspot country {self.country} outside the "
                    f"{layout.countries}-country layout"
                )
            return hotspot(
                layout, self.country, concentration=self.concentration
            )
        return mixture([
            (geo.compile(layout), weight)
            for geo, weight in self.components
        ])

    @classmethod
    def from_dict(cls, data: Mapping) -> "GeoSpec":
        return _build(cls, data, {
            "components": lambda raw: tuple(
                (GeoSpec.from_dict(g), w) for g, w in raw
            ),
        })


@dataclass(frozen=True)
class TierSpec:
    """One availability tier of a tenant: one virtual ring."""

    replicas: int
    partitions: int = 200
    partition_capacity: int = 256 * MB
    initial_size: int = 96 * MB
    threshold: Optional[float] = None
    ring_id: Optional[int] = None

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise SpecError(f"replicas must be >= 1, got {self.replicas}")
        if self.partitions < 1:
            raise SpecError(f"partitions must be >= 1, got {self.partitions}")
        if self.threshold is None and self.replicas not in paper_thresholds():
            raise SpecError(
                f"no paper threshold for {self.replicas} replicas — "
                f"give an explicit threshold"
            )

    def compile(self, index: int) -> RingConfig:
        threshold = self.threshold
        if threshold is None:
            threshold = paper_thresholds()[self.replicas]
        return RingConfig(
            ring_id=self.ring_id if self.ring_id is not None else index,
            threshold=threshold,
            target_replicas=self.replicas,
            partitions=self.partitions,
            partition_capacity=self.partition_capacity,
            initial_partition_size=self.initial_size,
        )

    @classmethod
    def from_dict(cls, data: Mapping) -> "TierSpec":
        return _build(cls, data)


@dataclass(frozen=True)
class TenantSpec:
    """One application: its query share, SLA tiers and client geography."""

    name: str
    share: float
    tiers: Tuple[TierSpec, ...]
    geography: GeoSpec = field(default_factory=GeoSpec)

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("tenant needs a name")
        if self.share <= 0:
            raise SpecError(f"share must be > 0, got {self.share}")
        if not self.tiers:
            raise SpecError(f"tenant {self.name!r} needs at least one tier")

    def compile(self, app_id: int, layout: CloudLayout) -> AppConfig:
        return AppConfig(
            app_id=app_id,
            name=self.name,
            query_share=self.share,
            rings=tuple(
                tier.compile(i) for i, tier in enumerate(self.tiers)
            ),
            geography=self.geography.compile(layout),
        )

    @classmethod
    def from_dict(cls, data: Mapping) -> "TenantSpec":
        return _build(cls, data, {
            "tiers": lambda raw: tuple(TierSpec.from_dict(t) for t in raw),
            "geography": GeoSpec.from_dict,
        })


@dataclass(frozen=True)
class PolicySpec:
    """Economic-policy knobs (mirrors :class:`EconomicPolicy` defaults)."""

    hysteresis: int = 3
    revenue_per_query: float = 0.01
    repair_iterations: int = 8
    rent_weight: float = 1.0
    migration_margin: float = 0.05
    storage_headroom: float = 0.1
    max_replicas: Optional[int] = None

    def compile(self) -> EconomicPolicy:
        return EconomicPolicy(**dataclasses.asdict(self))

    def __post_init__(self) -> None:
        self.compile()  # delegate validation to EconomicPolicy

    @classmethod
    def from_dict(cls, data: Mapping) -> "PolicySpec":
        return _build(cls, data)


@dataclass(frozen=True)
class EconomySpec:
    """Rent-model knobs (mirrors :class:`RentModel` defaults)."""

    alpha: float = 1.0
    beta: float = 1.0
    normalize_by_usage: bool = False

    def compile(self) -> RentModel:
        return RentModel(
            alpha=self.alpha, beta=self.beta,
            normalize_by_usage=self.normalize_by_usage,
        )

    def __post_init__(self) -> None:
        self.compile()  # delegate validation to RentModel

    @classmethod
    def from_dict(cls, data: Mapping) -> "EconomySpec":
        return _build(cls, data)


@dataclass(frozen=True)
class ConstraintsSpec:
    """Tier 3: tenants/SLAs, bandwidth budgets, economic policy."""

    tenants: Optional[Tuple[TenantSpec, ...]] = None
    partitions: int = 200
    partition_capacity: int = 256 * MB
    initial_size: int = 96 * MB
    replication_budget: int = 300 * MB
    migration_budget: int = 100 * MB
    policy: PolicySpec = field(default_factory=PolicySpec)
    economy: EconomySpec = field(default_factory=EconomySpec)

    def __post_init__(self) -> None:
        if self.partitions < 1:
            raise SpecError(f"partitions must be >= 1, got {self.partitions}")
        for name in ("replication_budget", "migration_budget",
                     "partition_capacity"):
            if getattr(self, name) < 0:
                raise SpecError(
                    f"{name} must be >= 0, got {getattr(self, name)}"
                )
        if not 0 <= self.initial_size <= self.partition_capacity:
            raise SpecError(
                "initial_size must be within partition_capacity"
            )

    def compile_apps(self, layout: CloudLayout) -> Tuple[AppConfig, ...]:
        if self.tenants is None:
            return paper_apps_config(
                partitions=self.partitions,
                partition_capacity=self.partition_capacity,
                initial_partition_size=self.initial_size,
            )
        return tuple(
            tenant.compile(i, layout)
            for i, tenant in enumerate(self.tenants)
        )

    @classmethod
    def from_dict(cls, data: Mapping) -> "ConstraintsSpec":
        return _build(cls, data, {
            "tenants": lambda raw: None if raw is None else tuple(
                TenantSpec.from_dict(t) for t in raw
            ),
            "policy": PolicySpec.from_dict,
            "economy": EconomySpec.from_dict,
        })


# ---------------------------------------------------------------------------
# Tier 4 — failure
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class JoinWave:
    """``count`` servers join at ``epoch`` (capacities default to the
    structure tier's server class)."""

    epoch: int
    count: int
    storage: Optional[int] = None
    query_capacity: Optional[int] = None
    rent: float = 100.0

    def __post_init__(self) -> None:
        if self.epoch < 0 or self.count < 1:
            raise SpecError("join wave needs epoch >= 0 and count >= 1")

    @classmethod
    def from_dict(cls, data: Mapping) -> "JoinWave":
        return _build(cls, data)


@dataclass(frozen=True)
class LeaveWave:
    """``count`` uncorrelated servers fail at ``epoch``."""

    epoch: int
    count: int
    exclude_recent: bool = True

    def __post_init__(self) -> None:
        if self.epoch < 0 or self.count < 1:
            raise SpecError("leave wave needs epoch >= 0 and count >= 1")

    @classmethod
    def from_dict(cls, data: Mapping) -> "LeaveWave":
        return _build(cls, data)


@dataclass(frozen=True)
class OutageEvent:
    """A correlated outage of one location subtree (2=country … 5=rack)."""

    epoch: int
    depth: int

    def __post_init__(self) -> None:
        if self.epoch < 0:
            raise SpecError(f"epoch must be >= 0, got {self.epoch}")
        if not 1 <= self.depth <= 5:
            raise SpecError(f"depth must be in [1, 5], got {self.depth}")

    @classmethod
    def from_dict(cls, data: Mapping) -> "OutageEvent":
        return _build(cls, data)


_EVENT_TYPES = (JoinWave, LeaveWave, OutageEvent)
_EVENT_KINDS = {JoinWave: "join", LeaveWave: "leave", OutageEvent: "outage"}
_EVENT_PARSERS = {
    "join": JoinWave.from_dict,
    "leave": LeaveWave.from_dict,
    "outage": OutageEvent.from_dict,
}


def _parse_event(raw: Mapping):
    if not isinstance(raw, Mapping) or "kind" not in raw:
        raise SpecError("failure event needs a 'kind' tag")
    kind = raw["kind"]
    if kind not in _EVENT_PARSERS:
        raise SpecError(
            f"unknown failure-event kind {kind!r} "
            f"(expected one of {sorted(_EVENT_PARSERS)})"
        )
    body = {k: v for k, v in raw.items() if k != "kind"}
    return _EVENT_PARSERS[kind](body)


@dataclass(frozen=True)
class PartitionWindow:
    """A scheduled network cut (mirrors :class:`NetPartition`)."""

    start: int
    heal: int
    depth: int = 2
    asymmetric: bool = False

    def compile(self) -> NetPartition:
        return NetPartition(
            start_epoch=self.start, heal_epoch=self.heal,
            depth=self.depth, asymmetric=self.asymmetric,
        )

    def __post_init__(self) -> None:
        try:
            self.compile()
        except ValueError as exc:
            raise SpecError(f"partition window: {exc}") from exc

    @classmethod
    def from_dict(cls, data: Mapping) -> "PartitionWindow":
        return _build(cls, data)


@dataclass(frozen=True)
class FlapWindow:
    """One drawn server's links flap (mirrors :class:`LinkFlap`)."""

    start: int
    heal: int

    def compile(self) -> LinkFlap:
        return LinkFlap(start_epoch=self.start, heal_epoch=self.heal)

    def __post_init__(self) -> None:
        try:
            self.compile()
        except ValueError as exc:
            raise SpecError(f"flap window: {exc}") from exc

    @classmethod
    def from_dict(cls, data: Mapping) -> "FlapWindow":
        return _build(cls, data)


@dataclass(frozen=True)
class NetSpec:
    """Control-plane fault knobs (mirrors :class:`NetConfig`)."""

    loss: float = 0.0
    delay_max: int = 0
    fanout: int = 3
    rounds_per_epoch: int = 3
    suspect_rounds: int = 4
    dead_rounds: int = 10
    fabric: str = "full"
    partitions: Tuple[PartitionWindow, ...] = ()
    flaps: Tuple[FlapWindow, ...] = ()

    def compile(self) -> NetConfig:
        return NetConfig(
            fanout=self.fanout,
            loss=self.loss,
            delay_max=self.delay_max,
            rounds_per_epoch=self.rounds_per_epoch,
            suspect_rounds=self.suspect_rounds,
            dead_rounds=self.dead_rounds,
            partitions=tuple(p.compile() for p in self.partitions),
            flaps=tuple(f.compile() for f in self.flaps),
            fabric=self.fabric,
        )

    def __post_init__(self) -> None:
        try:
            self.compile()
        except ValueError as exc:
            raise SpecError(f"net: {exc}") from exc

    @classmethod
    def from_dict(cls, data: Mapping) -> "NetSpec":
        return _build(cls, data, {
            "partitions": lambda raw: tuple(
                PartitionWindow.from_dict(p) for p in raw
            ),
            "flaps": lambda raw: tuple(
                FlapWindow.from_dict(f) for f in raw
            ),
        })


@dataclass(frozen=True)
class ChaosSpec:
    """A seeded random fault draw (:func:`repro.sim.chaos.random_fault_schedule`)."""

    seed: int = 0
    loss_lo: float = 0.02
    loss_hi: float = 0.15
    max_partitions: int = 2
    max_flaps: int = 2
    quiet_tail: int = 10

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_lo <= self.loss_hi < 1.0:
            raise SpecError(
                f"need 0 <= loss_lo <= loss_hi < 1, got "
                f"{self.loss_lo}, {self.loss_hi}"
            )
        if self.max_partitions < 0 or self.max_flaps < 0:
            raise SpecError("max_partitions and max_flaps must be >= 0")
        if self.quiet_tail < 0:
            raise SpecError(f"quiet_tail must be >= 0, got {self.quiet_tail}")

    @classmethod
    def from_dict(cls, data: Mapping) -> "ChaosSpec":
        return _build(cls, data)


@dataclass(frozen=True)
class FailureSpec:
    """Tier 4: membership events and the control-plane fault schedule."""

    events: Tuple[object, ...] = ()
    net: Optional[NetSpec] = None
    chaos: Optional[ChaosSpec] = None

    def __post_init__(self) -> None:
        for event in self.events:
            if not isinstance(event, _EVENT_TYPES):
                raise SpecError(
                    f"unknown failure event {type(event).__name__}"
                )

    def compile_net(self, epochs: int) -> Optional[NetConfig]:
        base = self.net.compile() if self.net is not None else None
        if self.chaos is None:
            return base
        from repro.sim.chaos import random_fault_schedule

        return random_fault_schedule(
            self.chaos.seed,
            epochs,
            loss_range=(self.chaos.loss_lo, self.chaos.loss_hi),
            max_partitions=self.chaos.max_partitions,
            max_flaps=self.chaos.max_flaps,
            quiet_tail=self.chaos.quiet_tail,
            base=base,
        )

    @classmethod
    def from_dict(cls, data: Mapping) -> "FailureSpec":
        return _build(cls, data, {
            "events": lambda raw: tuple(_parse_event(e) for e in raw),
            "net": lambda raw: None if raw is None
            else NetSpec.from_dict(raw),
            "chaos": lambda raw: None if raw is None
            else ChaosSpec.from_dict(raw),
        })


# ---------------------------------------------------------------------------
# Tier 5 — operations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class OperationsSpec:
    """Tier 5: horizon, seeds, kernel, audits, comparison tolerance."""

    epochs: int = 100
    seed: int = 0
    kernel: str = "vectorized"
    rtol: float = 0.0
    audit: bool = False
    settle_epochs: int = 16

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise SpecError(f"epochs must be >= 1, got {self.epochs}")
        if self.kernel not in KERNELS:
            raise SpecError(
                f"kernel must be one of {KERNELS}, got {self.kernel!r}"
            )
        if self.rtol < 0:
            raise SpecError(f"rtol must be >= 0, got {self.rtol}")
        if self.settle_epochs < 0:
            raise SpecError(
                f"settle_epochs must be >= 0, got {self.settle_epochs}"
            )

    @classmethod
    def from_dict(cls, data: Mapping) -> "OperationsSpec":
        return _build(cls, data)


# ---------------------------------------------------------------------------
# The spec
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative scenario: five tiers plus a name and a one-liner."""

    name: str
    summary: str = ""
    structure: StructureSpec = field(default_factory=StructureSpec)
    flows: FlowsSpec = field(default_factory=FlowsSpec)
    constraints: ConstraintsSpec = field(default_factory=ConstraintsSpec)
    failure: FailureSpec = field(default_factory=FailureSpec)
    operations: OperationsSpec = field(default_factory=OperationsSpec)

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("scenario needs a name")
        if self.operations.audit and self.flows.traffic is None:
            raise SpecError(
                f"{self.name}: a consistency audit needs client traffic "
                f"(flows.traffic)"
            )

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Plain JSON-able dict; lossless under :meth:`from_dict`."""
        return _plain(self)

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping) -> "ScenarioSpec":
        return _build(cls, data, {
            "structure": StructureSpec.from_dict,
            "flows": FlowsSpec.from_dict,
            "constraints": ConstraintsSpec.from_dict,
            "failure": FailureSpec.from_dict,
            "operations": OperationsSpec.from_dict,
        })

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"bad spec JSON: {exc}") from exc
        return cls.from_dict(data)

    # -- convenience -------------------------------------------------------

    def with_operations(self, **changes) -> "ScenarioSpec":
        """A copy with operations-tier fields replaced (epochs, seed …)."""
        return dataclasses.replace(
            self,
            operations=dataclasses.replace(self.operations, **changes),
        )


# ---------------------------------------------------------------------------
# Compilation
# ---------------------------------------------------------------------------


def compile_config(spec: ScenarioSpec) -> SimConfig:
    """Lower a spec onto a :class:`SimConfig` (deterministic)."""
    structure = spec.structure
    flows = spec.flows
    constraints = spec.constraints
    ops = spec.operations
    layout = structure.compile_layout()
    classes = structure.classes
    try:
        return SimConfig(
            layout=layout,
            apps=constraints.compile_apps(layout),
            epochs=ops.epochs,
            seed=ops.seed,
            server_storage=classes.storage,
            server_query_capacity=classes.query_capacity,
            replication_budget=constraints.replication_budget,
            migration_budget=constraints.migration_budget,
            expensive_fraction=classes.expensive_fraction,
            cheap_rent=classes.cheap_rent,
            expensive_rent=classes.expensive_rent,
            rent_model=constraints.economy.compile(),
            policy=constraints.policy.compile(),
            base_rate=flows.base_rate,
            profile=flows.compile_profile(),
            inserts=(
                None if flows.inserts is None else flows.inserts.compile()
            ),
            popularity_shape=flows.popularity_shape,
            popularity_scale=flows.popularity_scale,
            kernel=ops.kernel,
            confidence=(
                None if structure.confidence is None
                else structure.confidence.compile()
            ),
            net=spec.failure.compile_net(ops.epochs),
            data_plane=(
                None if flows.traffic is None else flows.traffic.compile()
            ),
            serving=(
                None if flows.serving is None else flows.serving.compile()
            ),
        )
    except SpecError:
        raise
    except ValueError as exc:
        raise SpecError(f"{spec.name}: {exc}") from exc


def compile_events(spec: ScenarioSpec,
                   config: SimConfig) -> Optional[EventSchedule]:
    """A *fresh* event schedule for one run (schedules are stateful)."""
    if not spec.failure.events:
        return None
    events: List[object] = []
    for event in spec.failure.events:
        if isinstance(event, JoinWave):
            events.append(AddServers(
                epoch=event.epoch,
                count=event.count,
                storage_capacity=(
                    config.server_storage if event.storage is None
                    else event.storage
                ),
                query_capacity=(
                    config.server_query_capacity
                    if event.query_capacity is None
                    else event.query_capacity
                ),
                monthly_rent=event.rent,
            ))
        elif isinstance(event, LeaveWave):
            events.append(RemoveServers(
                epoch=event.epoch,
                count=event.count,
                exclude_recent=event.exclude_recent,
            ))
        else:
            events.append(ScopedOutage(
                epoch=event.epoch, depth=event.depth
            ))
    return EventSchedule(
        events, layout=config.layout, rng=RngStreams(config.seed).events
    )


@dataclass(frozen=True)
class CompiledScenario:
    """A spec lowered onto runtime objects, ready to run."""

    spec: ScenarioSpec
    config: SimConfig

    def events(self) -> Optional[EventSchedule]:
        """A fresh event schedule (one per run — schedules are stateful)."""
        return compile_events(self.spec, self.config)

    @property
    def rtol(self) -> float:
        """The spec's opted-in kernel-equivalence tolerance."""
        return self.spec.operations.rtol

    def simulation(self, *, decider_factory=None):
        """Build a :class:`repro.sim.engine.Simulation` for this scenario."""
        from repro.sim.engine import Simulation

        kwargs = {}
        if decider_factory is not None:
            kwargs["decider_factory"] = decider_factory
        return Simulation(self.config, events=self.events(), **kwargs)

    def run_audit(self, *, decider_factory=None):
        """Run the scenario through the consistency-audit harness."""
        from repro.sim.chaos import run_consistency_audit

        kwargs = {}
        if decider_factory is not None:
            kwargs["decider_factory"] = decider_factory
        return run_consistency_audit(
            self.config,
            events=self.events(),
            settle_epochs=self.spec.operations.settle_epochs,
            **kwargs,
        )


def compile_spec(spec: ScenarioSpec) -> CompiledScenario:
    """Validate and lower a spec; the one entry point callers need."""
    return CompiledScenario(spec=spec, config=compile_config(spec))


@dataclass(frozen=True)
class ScenarioEntry:
    """One named-scenario registry row: the spec plus its pin horizon.

    ``pin_epochs`` is the short horizon the golden-digest suite
    (``tests/integration/test_named_scenarios.py``) runs the scenario
    for — shorter than the spec's own horizon so sweeping the whole
    catalog stays cheap.
    """

    spec: ScenarioSpec
    pin_epochs: int

    def __post_init__(self) -> None:
        if self.pin_epochs < 1:
            raise SpecError(
                f"{self.spec.name}: pin_epochs must be >= 1, got "
                f"{self.pin_epochs}"
            )

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def summary(self) -> str:
        return self.spec.summary

    def pinned(self) -> CompiledScenario:
        """Compile the spec at its pin horizon (for digest pinning)."""
        return compile_spec(self.spec.with_operations(epochs=self.pin_epochs))


def load_spec(path) -> ScenarioSpec:
    """Read a spec from a JSON file (the CLI's ``scenario run <path>``)."""
    from pathlib import Path

    return ScenarioSpec.from_json(Path(path).read_text())


# ---------------------------------------------------------------------------
# Paper-shaped building blocks
# ---------------------------------------------------------------------------


#: The evaluation's query shares over the three applications (§III-A).
PAPER_SHARES: Tuple[float, ...] = (4.0 / 7.0, 2.0 / 7.0, 1.0 / 7.0)


def paper_tenants(*, partitions: int = 200,
                  partition_capacity: int = 256 * MB,
                  initial_size: int = 96 * MB) -> Tuple[TenantSpec, ...]:
    """The three §III-A tenants as explicit specs.

    Compiles to exactly :func:`repro.sim.config.paper_apps_config`
    (ring ids match app ids, thresholds come from
    :func:`paper_thresholds`) — the starting point for scenarios that
    override per-tenant fields such as geography.
    """
    return tuple(
        TenantSpec(
            name=f"app-{i + 1}",
            share=share,
            tiers=(
                TierSpec(
                    replicas=2 + i,
                    partitions=partitions,
                    partition_capacity=partition_capacity,
                    initial_size=initial_size,
                    ring_id=i,
                ),
            ),
        )
        for i, share in enumerate(PAPER_SHARES)
    )


# ---------------------------------------------------------------------------
# The spec sampler — the randomized harnesses draw from *this* space
# ---------------------------------------------------------------------------


def sample_spec(seed: int) -> ScenarioSpec:
    """Draw one seeded random scenario spec (fault-free).

    The sampled space covers what the ad-hoc knob randomization in the
    PR 5 equivalence harness covered — cloud shape, partition counts,
    tight policy bounds, base rate, fractional confidences, join/leave
    churn, insert streams — plus the flow phases specs added (flash
    crowds, diurnal cycles, zipf data-plane traffic).  Fractional
    confidences set ``operations.rtol`` to the same 1e-9 the golden
    registry grants them; everything else compares bit-exactly.

    The draw is deterministic per seed, and the spec compiles with
    ``net=None`` so both epoch kernels must agree on the frame stream.
    """
    rng = np.random.default_rng(99_000 + seed)
    layout = LayoutSpec(
        countries=int(rng.integers(3, 6)),
        countries_per_continent=int(rng.integers(1, 3)),
        datacenters_per_country=int(rng.integers(1, 3)),
        rooms_per_datacenter=1,
        racks_per_room=int(rng.integers(1, 3)),
        servers_per_rack=int(rng.integers(2, 5)),
    )
    total = layout.compile().total_servers
    epochs = int(rng.integers(8, 14))
    structure = StructureSpec(
        layout=layout,
        classes=ServerClassesSpec(
            storage=int(rng.integers(2, 6)) * GB,
        ),
    )
    rtol = 0.0
    if rng.random() < 0.5:
        countries = rng.choice(
            layout.countries, size=min(2, layout.countries), replace=False
        )
        structure = dataclasses.replace(
            structure,
            confidence=ConfidenceSpec(
                base=float(rng.uniform(0.85, 1.0)),
                country_factors={
                    int(c): float(rng.uniform(0.8, 1.0)) for c in countries
                },
            ),
        )
        rtol = 1e-9
    flows = FlowsSpec(base_rate=float(rng.uniform(500.0, 4000.0)))
    if rng.random() < 0.25:
        flows = dataclasses.replace(
            flows,
            inserts=InsertStream(
                rate=int(rng.integers(50, 400)),
                object_size=256 * 1024,
            ),
        )
    if rng.random() < 0.25:
        flows = dataclasses.replace(
            flows,
            surges=(FlashCrowd(
                spike_epoch=int(rng.integers(1, max(2, epochs - 4))),
                ramp_epochs=int(rng.integers(1, 4)),
                decay_epochs=int(rng.integers(2, 6)),
                peak_factor=float(rng.uniform(2.0, 8.0)),
            ),),
        )
    if rng.random() < 0.2:
        flows = dataclasses.replace(
            flows,
            diurnal=Diurnal(
                period=int(rng.integers(4, 9)),
                amplitude=float(rng.uniform(0.2, 0.8)),
                phase=int(rng.integers(0, 4)),
            ),
        )
    if rng.random() < 0.2:
        flows = dataclasses.replace(
            flows,
            traffic=ClientTraffic(
                ops_per_epoch=int(rng.integers(8, 17)),
                keyspace=int(rng.integers(16, 49)),
            ),
        )
    constraints = ConstraintsSpec(
        partitions=int(rng.integers(4, 13)),
        policy=PolicySpec(
            hysteresis=int(rng.integers(2, 4)),
            repair_iterations=int(rng.integers(1, 5)),
            migration_margin=float(rng.uniform(0.0, 0.1)),
            storage_headroom=float(rng.uniform(0.0, 0.15)),
        ),
    )
    events: List[object] = []
    if rng.random() < 0.6:
        add_epoch = int(rng.integers(1, max(2, epochs - 4)))
        events.append(JoinWave(
            epoch=add_epoch,
            count=int(rng.integers(1, max(2, total // 3))),
        ))
        events.append(LeaveWave(
            epoch=int(rng.integers(add_epoch + 1, epochs)),
            count=int(rng.integers(1, max(2, total // 4))),
        ))
    return ScenarioSpec(
        name=f"sampled-{seed}",
        summary=f"seeded random spec #{seed} from the sampler space",
        structure=structure,
        flows=flows,
        constraints=constraints,
        failure=FailureSpec(events=tuple(events)),
        operations=OperationsSpec(
            epochs=epochs,
            seed=int(rng.integers(1_000_000)),
            rtol=rtol,
        ),
    )


def sample_chaos_spec(seed: int) -> ScenarioSpec:
    """Draw one seeded chaos-audit spec (network faults + quorum traffic).

    The sampled space matches the ISSUE 7 chaos sweep: a paper-shaped
    cloud, a :class:`ChaosSpec` fault draw keyed by the same seed, zipf
    quorum traffic, and the consistency audit armed.  Under network-only
    faults the audit must come back GREEN (zero lost writes, zero dirty
    ghost reads) — the sweep-wide contract
    ``tests/integration/test_chaos_audit.py`` enforces.
    """
    return ScenarioSpec(
        name=f"chaos-{seed}",
        summary=f"seeded chaos-audit draw #{seed}: random faults + quorum traffic",
        flows=FlowsSpec(traffic=ClientTraffic(ops_per_epoch=24)),
        constraints=ConstraintsSpec(partitions=30),
        failure=FailureSpec(chaos=ChaosSpec(seed=seed, quiet_tail=8)),
        operations=OperationsSpec(epochs=24, seed=seed, audit=True),
    )
