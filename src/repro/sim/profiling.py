"""Epoch-throughput measurement for the vectorized epoch kernel.

One measurement primitive shared by the ``repro profile`` CLI
subcommand and the ``benchmarks/perf`` regression harness: build a
scenario, run it under a wall-clock timer, report epochs/second.  The
kernel comparison runs the same seeded scenario under the production
(``vectorized``) and reference (``scalar``) kernels — which produce the
identical ``EpochFrame`` stream, so the ratio is a pure like-for-like
throughput number.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.decision import KERNELS
from repro.sim.config import SimConfig
from repro.sim.engine import Simulation


class ProfilingError(ValueError):
    """Raised for invalid measurement requests."""


@dataclass(frozen=True)
class ThroughputResult:
    """One timed simulation run."""

    kernel: str
    epochs: int
    seconds: float
    total_queries: int
    #: Peak resident bytes of the run's stored frame stream (the
    #: columnar FrameStore only grows, so end-of-run is the peak).
    frame_store_bytes: int = 0
    #: Per-code message totals when the run carried the gossip control
    #: plane (``config.net``), else None.
    messages: Optional[Dict[str, Dict[str, int]]] = None

    @property
    def epochs_per_sec(self) -> float:
        if self.seconds <= 0:
            return float("inf")
        return self.epochs / self.seconds


def measure_throughput(config: SimConfig, *,
                       epochs: Optional[int] = None,
                       warmup_epochs: int = 0,
                       repeats: int = 1) -> ThroughputResult:
    """Best-of-``repeats`` wall-clock throughput of one scenario.

    Construction cost (cloud build, seeding) is excluded — the harness
    tracks the *epoch loop*, which is what scales with horizon length.
    ``warmup_epochs`` run untimed first, so steady-state measurements
    can skip the replication bootstrap (the first epochs after the
    single-replica seeding are transfer-bound in any kernel).  Best-of
    is the standard perf-measurement choice: every slower run is the
    same work plus scheduler noise.
    """
    if repeats < 1:
        raise ProfilingError(f"repeats must be >= 1, got {repeats}")
    if warmup_epochs < 0:
        raise ProfilingError(
            f"warmup_epochs must be >= 0, got {warmup_epochs}"
        )
    horizon = config.epochs if epochs is None else epochs
    if horizon < 1:
        raise ProfilingError(f"epochs must be >= 1, got {horizon}")
    best: Optional[ThroughputResult] = None
    for __ in range(repeats):
        sim = Simulation(config)
        if warmup_epochs:
            sim.run(warmup_epochs)
        start = time.perf_counter()
        sim.run(horizon)
        elapsed = time.perf_counter() - start
        frames = list(sim.metrics)[-horizon:]
        result = ThroughputResult(
            kernel=config.kernel,
            epochs=horizon,
            seconds=elapsed,
            total_queries=int(sum(f.total_queries for f in frames)),
            frame_store_bytes=sim.metrics.nbytes,
            messages=(
                sim.robustness.message_totals()
                if sim.robustness is not None else None
            ),
        )
        if best is None or result.seconds < best.seconds:
            best = result
    assert best is not None
    return best


def compare_kernels(config: SimConfig, *,
                    epochs: Optional[int] = None,
                    warmup_epochs: int = 0,
                    repeats: int = 1,
                    kernels: Tuple[str, ...] = KERNELS
                    ) -> Dict[str, ThroughputResult]:
    """Measure the same scenario under each kernel."""
    results: Dict[str, ThroughputResult] = {}
    for kernel in kernels:
        cfg = dataclasses.replace(config, kernel=kernel)
        results[kernel] = measure_throughput(
            cfg, epochs=epochs, warmup_epochs=warmup_epochs,
            repeats=repeats,
        )
    return results


def speedup(results: Dict[str, ThroughputResult]) -> Optional[float]:
    """Vectorized-over-scalar throughput ratio, when both were run."""
    fast = results.get("vectorized")
    slow = results.get("scalar")
    if fast is None or slow is None:
        return None
    if slow.epochs_per_sec <= 0:
        return None
    return fast.epochs_per_sec / slow.epochs_per_sec
