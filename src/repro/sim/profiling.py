"""Epoch-throughput measurement for the vectorized epoch kernel.

One measurement primitive shared by the ``repro profile`` CLI
subcommand and the ``benchmarks/perf`` regression harness: build a
scenario, run it under a wall-clock timer, report epochs/second.  The
kernel comparison runs the same seeded scenario under the production
(``vectorized``) and reference (``scalar``) kernels — which produce the
identical ``EpochFrame`` stream, so the ratio is a pure like-for-like
throughput number.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.core.decision import KERNELS
from repro.sim.config import SimConfig
from repro.sim.engine import Simulation


class ProfilingError(ValueError):
    """Raised for invalid measurement requests."""


@dataclass(frozen=True)
class ThroughputResult:
    """One timed simulation run."""

    kernel: str
    epochs: int
    seconds: float
    total_queries: int
    #: Peak resident bytes of the run's stored frame stream (the
    #: columnar FrameStore only grows, so end-of-run is the peak).
    frame_store_bytes: int = 0
    #: Per-code message totals when the run carried the gossip control
    #: plane (``config.net``), else None.
    messages: Optional[Dict[str, Dict[str, int]]] = None
    #: Mutation/steady split (``measure_throughput(split=True)``): a
    #: *mutation epoch* is one whose step moved the cloud or catalog
    #: version (churn waves, transfers, splits) — exactly the epochs
    #: that invalidate the flat incidence cache; the remainder are
    #: steady-state epochs that reuse it whole.
    mutation_epochs: int = 0
    mutation_seconds: float = 0.0
    steady_epochs: int = 0
    steady_seconds: float = 0.0

    @property
    def epochs_per_sec(self) -> float:
        if self.seconds <= 0:
            return float("inf")
        return self.epochs / self.seconds

    @property
    def mutation_epochs_per_sec(self) -> Optional[float]:
        if not self.mutation_epochs:
            return None
        if self.mutation_seconds <= 0:
            return float("inf")
        return self.mutation_epochs / self.mutation_seconds

    @property
    def steady_epochs_per_sec(self) -> Optional[float]:
        if not self.steady_epochs:
            return None
        if self.steady_seconds <= 0:
            return float("inf")
        return self.steady_epochs / self.steady_seconds


def measure_throughput(config: SimConfig, *,
                       epochs: Optional[int] = None,
                       warmup_epochs: int = 0,
                       repeats: int = 1,
                       events_factory: Optional[Callable[[], object]] = None,
                       split: bool = False) -> ThroughputResult:
    """Best-of-``repeats`` wall-clock throughput of one scenario.

    Construction cost (cloud build, seeding) is excluded — the harness
    tracks the *epoch loop*, which is what scales with horizon length.
    ``warmup_epochs`` run untimed first, so steady-state measurements
    can skip the replication bootstrap (the first epochs after the
    single-replica seeding are transfer-bound in any kernel).  Best-of
    is the standard perf-measurement choice: every slower run is the
    same work plus scheduler noise.

    ``events_factory`` builds a fresh :class:`EventSchedule` per repeat
    (schedules are stateful — rng, log — so one instance cannot be
    replayed); ``split=True`` steps the timed window one epoch at a
    time and classifies each as mutation vs steady by whether the
    cloud/catalog versions moved, filling the result's split fields.
    """
    if repeats < 1:
        raise ProfilingError(f"repeats must be >= 1, got {repeats}")
    if warmup_epochs < 0:
        raise ProfilingError(
            f"warmup_epochs must be >= 0, got {warmup_epochs}"
        )
    horizon = config.epochs if epochs is None else epochs
    if horizon < 1:
        raise ProfilingError(f"epochs must be >= 1, got {horizon}")
    best: Optional[ThroughputResult] = None
    for __ in range(repeats):
        if events_factory is not None:
            sim = Simulation(config, events=events_factory())
        else:
            sim = Simulation(config)
        if warmup_epochs:
            sim.run(warmup_epochs)
        mut_epochs = steady_count = 0
        mut_seconds = steady_seconds = 0.0
        if split:
            perf_counter = time.perf_counter
            start = perf_counter()
            for __e in range(horizon):
                ver = (sim.cloud.version, sim.catalog.version)
                t0 = perf_counter()
                sim.step()
                dt = perf_counter() - t0
                if (sim.cloud.version, sim.catalog.version) != ver:
                    mut_epochs += 1
                    mut_seconds += dt
                else:
                    steady_count += 1
                    steady_seconds += dt
            elapsed = perf_counter() - start
        else:
            start = time.perf_counter()
            sim.run(horizon)
            elapsed = time.perf_counter() - start
        frames = list(sim.metrics)[-horizon:]
        result = ThroughputResult(
            kernel=config.kernel,
            epochs=horizon,
            seconds=elapsed,
            total_queries=int(sum(f.total_queries for f in frames)),
            frame_store_bytes=sim.metrics.nbytes,
            messages=(
                sim.robustness.message_totals()
                if sim.robustness is not None else None
            ),
            mutation_epochs=mut_epochs,
            mutation_seconds=mut_seconds,
            steady_epochs=steady_count,
            steady_seconds=steady_seconds,
        )
        if best is None or result.seconds < best.seconds:
            best = result
    assert best is not None
    return best


def compare_kernels(config: SimConfig, *,
                    epochs: Optional[int] = None,
                    warmup_epochs: int = 0,
                    repeats: int = 1,
                    kernels: Tuple[str, ...] = KERNELS,
                    events_factory: Optional[Callable[[], object]] = None,
                    split: bool = False
                    ) -> Dict[str, ThroughputResult]:
    """Measure the same scenario under each kernel."""
    results: Dict[str, ThroughputResult] = {}
    for kernel in kernels:
        cfg = dataclasses.replace(config, kernel=kernel)
        results[kernel] = measure_throughput(
            cfg, epochs=epochs, warmup_epochs=warmup_epochs,
            repeats=repeats, events_factory=events_factory, split=split,
        )
    return results


def speedup(results: Dict[str, ThroughputResult]) -> Optional[float]:
    """Vectorized-over-scalar throughput ratio, when both were run."""
    fast = results.get("vectorized")
    slow = results.get("scalar")
    if fast is None or slow is None:
        return None
    if slow.epochs_per_sec <= 0:
        return None
    return fast.epochs_per_sec / slow.epochs_per_sec
