"""Scenario configuration for the Skute simulator.

:class:`SimConfig` captures every §III-A parameter.  The stock factory
:func:`paper_scenario` reproduces the evaluation setup; the per-figure
variants add the Slashdot profile (Fig. 4), the elasticity events
(Fig. 3) and the insert stream (Fig. 5).

Scale note: the paper stores 500 GB across three applications while
capping partitions at 256 MB with M=200 partitions per application —
numbers that force thousands of immediate splits.  The default scenario
keeps M=200 and the 256 MB cap but seeds each partition at half
capacity (96 MB, migratable within the 100 MB/epoch budget), preserving
every decision-relevant ratio (storage pressure, splits under inserts,
bandwidth-budget units) at tractable
simulation cost; :func:`paper_scenario` exposes the knobs to run the
full-size variant.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.cluster.confidence import ConfidenceModel
from repro.cluster.server import GB, MB
from repro.cluster.topology import CloudLayout
from repro.core.availability import paper_thresholds
from repro.core.decision import KERNELS, EconomicPolicy
from repro.core.economy import RentModel
from repro.net.model import NetConfig
from repro.workload.arrivals import ConstantRate, RateProfile
from repro.workload.clients import ClientGeography, uniform_geography
from repro.workload.slashdot import slashdot_profile


class ConfigError(ValueError):
    """Raised for inconsistent scenario configurations."""


def scaled_paper_layout(scale: int = 1) -> CloudLayout:
    """The §III-A cloud grown ``scale``× (same geography tree).

    Scaling only the partition count would oversubscribe the paper
    cloud's storage and measure a permanent repair storm instead of
    epoch throughput, so scale variants grow the cloud alongside:
    the 10 countries / 2 datacenters skeleton is kept and racks get
    deeper (and, at 10×+, more numerous), exactly how capacity upgrades
    land in practice.  Scales 10 and 100 match the perf harness's
    ``fig4-slashdot-10x``/``-100x`` scenarios; other factors deepen
    racks linearly.
    """
    if scale < 1:
        raise ConfigError(f"scale must be >= 1, got {scale}")
    if scale == 1:
        return CloudLayout()
    if scale == 10:
        return CloudLayout(racks_per_room=4, servers_per_rack=25)
    if scale == 100:
        return CloudLayout(racks_per_room=8, servers_per_rack=125)
    return CloudLayout(servers_per_rack=5 * scale)


@dataclass(frozen=True)
class RingConfig:
    """One virtual ring of one application."""

    ring_id: int
    threshold: float
    target_replicas: int
    partitions: int = 200
    partition_capacity: int = 256 * MB
    # 96 MB default: under the 100 MB/epoch migration budget, so freshly
    # seeded partitions can migrate; insert-grown partitions may exceed
    # it and lose migration (only replication/suicide), as in the paper's
    # own parameterisation (256 MB cap vs 100 MB/epoch budget).
    initial_partition_size: int = 96 * MB

    def __post_init__(self) -> None:
        if self.threshold < 0:
            raise ConfigError(f"threshold must be >= 0, got {self.threshold}")
        if self.target_replicas < 1:
            raise ConfigError(
                f"target_replicas must be >= 1, got {self.target_replicas}"
            )
        if self.partitions < 1:
            raise ConfigError(
                f"partitions must be >= 1, got {self.partitions}"
            )
        if not 0 <= self.initial_partition_size <= self.partition_capacity:
            raise ConfigError(
                "initial_partition_size must be within partition_capacity"
            )


@dataclass(frozen=True)
class AppConfig:
    """One tenant application: its rings, query share and geography."""

    app_id: int
    name: str
    query_share: float
    rings: Tuple[RingConfig, ...]
    geography: ClientGeography = field(default_factory=uniform_geography)

    def __post_init__(self) -> None:
        if not self.rings:
            raise ConfigError(f"app {self.app_id} needs at least one ring")
        ids = [r.ring_id for r in self.rings]
        if len(set(ids)) != len(ids):
            raise ConfigError(f"app {self.app_id} has duplicate ring ids")


@dataclass(frozen=True)
class InsertConfig:
    """The Fig. 5 insert stream.

    ``routing`` selects how inserts map to partitions: ``"keyspace"``
    (new keys hash uniformly, inflow ∝ arc fraction — the default and
    the reading under which the paper's 96 %-fill claim is reachable)
    or ``"popularity"`` (inflow follows the Pareto query skew — the
    stress variant used by the ablation benches).
    """

    rate: int = 2000
    object_size: int = 500 * 1024
    start_epoch: int = 0
    routing: str = "keyspace"

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ConfigError(f"rate must be >= 0, got {self.rate}")
        if self.object_size <= 0:
            raise ConfigError(
                f"object_size must be > 0, got {self.object_size}"
            )
        if self.routing not in ("keyspace", "popularity"):
            raise ConfigError(
                f"routing must be 'keyspace' or 'popularity', got "
                f"{self.routing!r}"
            )


@dataclass(frozen=True)
class DataPlaneConfig:
    """The stale-view serving data plane riding on the epoch loop.

    When attached to a :class:`SimConfig`, every epoch runs
    ``ops_per_epoch`` synthetic client get/put operations through a
    :class:`repro.store.quorum.QuorumKVStore` routed by the run's
    *believed* membership view, drains hinted handoffs, and performs a
    budget-capped anti-entropy pass — emitting one
    :class:`repro.sim.metrics.DataPlaneFrame` per epoch into the
    :class:`repro.sim.metrics.RobustnessLog`.

    The data plane is an observer overlay: it owns its own versioned
    copies and its own RNG stream (``dataplane``), touches no
    economic state, and therefore leaves the golden EpochFrame
    streams byte-identical whether enabled or not.
    """

    level: str = "quorum"
    ops_per_epoch: int = 48
    read_fraction: float = 0.6
    keyspace: int = 96
    value_size: int = 64
    hint_ttl: int = 32
    hint_base_delay: int = 1
    hint_backoff_cap: int = 8
    anti_entropy_partitions: int = 8
    anti_entropy_bytes: int = 1 << 20
    read_repair: bool = True

    def __post_init__(self) -> None:
        if self.level not in ("one", "quorum", "all"):
            raise ConfigError(
                f"level must be 'one', 'quorum' or 'all', got "
                f"{self.level!r}"
            )
        if self.ops_per_epoch < 0:
            raise ConfigError(
                f"ops_per_epoch must be >= 0, got {self.ops_per_epoch}"
            )
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ConfigError(
                f"read_fraction must be in [0, 1], got "
                f"{self.read_fraction}"
            )
        if self.keyspace < 1:
            raise ConfigError(
                f"keyspace must be >= 1, got {self.keyspace}"
            )
        if self.value_size < 1:
            raise ConfigError(
                f"value_size must be >= 1, got {self.value_size}"
            )
        if self.hint_ttl < 1:
            raise ConfigError(
                f"hint_ttl must be >= 1, got {self.hint_ttl}"
            )
        if self.hint_base_delay < 1:
            raise ConfigError(
                f"hint_base_delay must be >= 1, got "
                f"{self.hint_base_delay}"
            )
        if self.hint_backoff_cap < self.hint_base_delay:
            raise ConfigError(
                f"hint_backoff_cap must be >= hint_base_delay, got "
                f"{self.hint_backoff_cap} < {self.hint_base_delay}"
            )
        if self.anti_entropy_partitions < 0:
            raise ConfigError(
                f"anti_entropy_partitions must be >= 0, got "
                f"{self.anti_entropy_partitions}"
            )
        if self.anti_entropy_bytes < 0:
            raise ConfigError(
                f"anti_entropy_bytes must be >= 0, got "
                f"{self.anti_entropy_bytes}"
            )


@dataclass(frozen=True)
class ServingConfig:
    """The live-serving front door riding on the epoch loop (ISSUE 10).

    When attached to a :class:`SimConfig`, every epoch an open-loop
    arrival stream of ``requests_per_epoch`` get/put requests (its own
    ``serving`` RNG stream) is admitted by a deterministic event-loop
    scheduler over ``workers`` virtual executors, routed through
    :class:`repro.ring.router.Router` to a
    :class:`repro.store.quorum.QuorumKVStore`, and costed with
    :class:`repro.analysis.latency.LatencyModel` RTTs along the quorum
    path (coordinator hop + slowest-of-quorum replica fan-out +
    timeout penalties under faults) — emitting one
    :class:`repro.sim.metrics.ServingFrame` per epoch with
    requests/sec, p50/p99/p999 read & write latency and SLA-violation
    counts.

    Like the data plane, the front door is an observer overlay: it
    owns its own versioned copies, hints and RNG stream and touches no
    economic state, so enabling it leaves the golden EpochFrame
    streams byte-identical.
    """

    level: str = "quorum"
    requests_per_epoch: int = 512
    read_fraction: float = 0.9
    keyspace: int = 256
    value_size: int = 64
    #: Virtual executors of the front end's event loop: requests queue
    #: when every worker is busy, so queueing delay shows in the tails.
    #: A cross-continent round trip is ~120 ms and a quorum op pays
    #: two of them, so 512 req/s of ~200 ms ops needs ~100 executors
    #: to sit below saturation; 128 leaves headroom for fault windows.
    workers: int = 128
    #: Simulated wall-clock milliseconds one epoch represents — the
    #: arrival window the open-loop generator spreads requests over and
    #: the denominator of ``requests_per_sec``.
    epoch_ms: float = 1000.0
    #: Coordinator-side cost of waiting out a replica that times out or
    #: cannot be reached (also the floor cost of a failed quorum).
    timeout_penalty_ms: float = 250.0
    #: Latency targets: a worst-case healthy quorum op costs two
    #: cross-continent round trips (~240 ms), so 250/400 ms classify
    #: timeout waits and queueing excursions as violations without
    #: penalizing clean geography.
    sla_read_ms: float = 250.0
    sla_write_ms: float = 400.0
    hint_ttl: int = 32
    hint_base_delay: int = 1
    hint_backoff_cap: int = 8
    anti_entropy_partitions: int = 8
    anti_entropy_bytes: int = 1 << 20
    read_repair: bool = True

    def __post_init__(self) -> None:
        if self.level not in ("one", "quorum", "all"):
            raise ConfigError(
                f"level must be 'one', 'quorum' or 'all', got "
                f"{self.level!r}"
            )
        if self.requests_per_epoch < 0:
            raise ConfigError(
                f"requests_per_epoch must be >= 0, got "
                f"{self.requests_per_epoch}"
            )
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ConfigError(
                f"read_fraction must be in [0, 1], got "
                f"{self.read_fraction}"
            )
        if self.keyspace < 1:
            raise ConfigError(
                f"keyspace must be >= 1, got {self.keyspace}"
            )
        if self.value_size < 1:
            raise ConfigError(
                f"value_size must be >= 1, got {self.value_size}"
            )
        if self.workers < 1:
            raise ConfigError(f"workers must be >= 1, got {self.workers}")
        if self.epoch_ms <= 0:
            raise ConfigError(
                f"epoch_ms must be > 0, got {self.epoch_ms}"
            )
        if self.timeout_penalty_ms < 0:
            raise ConfigError(
                f"timeout_penalty_ms must be >= 0, got "
                f"{self.timeout_penalty_ms}"
            )
        if self.sla_read_ms <= 0 or self.sla_write_ms <= 0:
            raise ConfigError(
                f"SLA targets must be > 0, got read {self.sla_read_ms} "
                f"/ write {self.sla_write_ms}"
            )
        if self.hint_ttl < 1:
            raise ConfigError(
                f"hint_ttl must be >= 1, got {self.hint_ttl}"
            )
        if self.hint_base_delay < 1:
            raise ConfigError(
                f"hint_base_delay must be >= 1, got "
                f"{self.hint_base_delay}"
            )
        if self.hint_backoff_cap < self.hint_base_delay:
            raise ConfigError(
                f"hint_backoff_cap must be >= hint_base_delay, got "
                f"{self.hint_backoff_cap} < {self.hint_base_delay}"
            )
        if self.anti_entropy_partitions < 0:
            raise ConfigError(
                f"anti_entropy_partitions must be >= 0, got "
                f"{self.anti_entropy_partitions}"
            )
        if self.anti_entropy_bytes < 0:
            raise ConfigError(
                f"anti_entropy_bytes must be >= 0, got "
                f"{self.anti_entropy_bytes}"
            )


@dataclass(frozen=True)
class SimConfig:
    """Complete description of one simulation run."""

    layout: CloudLayout = field(default_factory=CloudLayout)
    apps: Tuple[AppConfig, ...] = ()
    epochs: int = 100
    seed: int = 0
    server_storage: int = 5 * GB
    server_query_capacity: int = 1000
    replication_budget: int = 300 * MB
    migration_budget: int = 100 * MB
    expensive_fraction: float = 0.3
    cheap_rent: float = 100.0
    expensive_rent: float = 125.0
    rent_model: RentModel = field(default_factory=RentModel)
    policy: EconomicPolicy = field(default_factory=EconomicPolicy)
    base_rate: float = 3000.0
    profile: Optional[RateProfile] = None
    inserts: Optional[InsertConfig] = None
    popularity_shape: float = 1.0
    popularity_scale: float = 50.0
    # Epoch-kernel selection: "vectorized" (production — batched eq. 5
    # settlement, incremental eq. 2 availability) or "scalar" (the
    # straight-line reference the equivalence tests and the perf
    # harness compare against).  Seeded runs produce bit-identical
    # EpochFrame streams under either kernel.
    kernel: str = "vectorized"
    # Per-server confidence assignment (eq. 2 weights).  None keeps the
    # evaluation's uniform conf ≡ 1.0.  Fractional confidences make
    # eq. 2 pair terms non-integer, so such scenarios compare kernel
    # streams under a relative tolerance rather than bit-exactly (see
    # PERFORMANCE.md and the golden registry's per-scenario rtol).
    confidence: Optional[ConfidenceModel] = None
    # Faulty control-plane network (ROADMAP item 3).  None keeps the
    # idealized instant-membership engine path byte-for-byte; a
    # NetConfig routes every heartbeat/price/membership message through
    # the repro.net fabric and the engine consumes *believed* (stale)
    # membership and price columns.  A zero-fault NetConfig (loss=0,
    # delay_max=0, no partitions/flaps) reproduces the idealized run
    # exactly while still counting every control-plane message.
    net: Optional[NetConfig] = None
    # Stale-view serving data plane (ISSUE 7).  None skips it; a
    # DataPlaneConfig runs quorum client traffic + hinted handoff +
    # read repair + anti-entropy over the believed membership view,
    # with per-epoch DataPlaneFrame metrics in the RobustnessLog.
    data_plane: Optional[DataPlaneConfig] = None
    # Live-serving front door (ISSUE 10).  None skips it; a
    # ServingConfig admits an open-loop request stream through the
    # router → quorum store each epoch and reports per-epoch
    # throughput, latency tails and SLA violations as ServingFrames.
    serving: Optional[ServingConfig] = None

    def __post_init__(self) -> None:
        if not self.apps:
            raise ConfigError("need at least one application")
        if self.kernel not in KERNELS:
            raise ConfigError(
                f"kernel must be one of {KERNELS}, got {self.kernel!r}"
            )
        ids = [a.app_id for a in self.apps]
        if len(set(ids)) != len(ids):
            raise ConfigError(f"duplicate app ids: {ids}")
        if self.epochs < 1:
            raise ConfigError(f"epochs must be >= 1, got {self.epochs}")
        if self.server_storage <= 0:
            raise ConfigError("server_storage must be > 0")
        if self.server_query_capacity <= 0:
            raise ConfigError("server_query_capacity must be > 0")
        if self.base_rate < 0:
            raise ConfigError(f"base_rate must be >= 0, got {self.base_rate}")

    @property
    def rate_profile(self) -> RateProfile:
        return self.profile if self.profile is not None else ConstantRate(
            self.base_rate
        )

    @property
    def total_initial_bytes(self) -> int:
        """Primary-copy bytes seeded at startup (before replication)."""
        return sum(
            ring.partitions * ring.initial_partition_size
            for app in self.apps
            for ring in app.rings
        )

    def app(self, app_id: int) -> AppConfig:
        for app in self.apps:
            if app.app_id == app_id:
                return app
        raise ConfigError(f"unknown app id {app_id}")


def paper_apps_config(*, partitions: int = 200,
                      partition_capacity: int = 256 * MB,
                      initial_partition_size: int = 96 * MB,
                      thresholds: Optional[Dict[int, float]] = None
                      ) -> Tuple[AppConfig, ...]:
    """The evaluation's three applications on virtual rings 0, 1, 2.

    Application i demands the availability level met by 2+i replicas
    and attracts 4/7, 2/7, 1/7 of the query load respectively.
    """
    th = thresholds if thresholds is not None else paper_thresholds()
    shares = (4.0 / 7.0, 2.0 / 7.0, 1.0 / 7.0)
    apps: List[AppConfig] = []
    for i, share in enumerate(shares):
        replicas = 2 + i
        apps.append(
            AppConfig(
                app_id=i,
                name=f"app-{i + 1}",
                query_share=share,
                rings=(
                    RingConfig(
                        ring_id=i,
                        threshold=th[replicas],
                        target_replicas=replicas,
                        partitions=partitions,
                        partition_capacity=partition_capacity,
                        initial_partition_size=initial_partition_size,
                    ),
                ),
            )
        )
    return tuple(apps)


def paper_scenario(*, epochs: int = 100, seed: int = 0,
                   partitions: int = 200,
                   initial_partition_size: int = 96 * MB,
                   server_storage: int = 5 * GB,
                   base_rate: float = 3000.0) -> SimConfig:
    """The §III-A base scenario: 200 servers, 3 apps, Poisson(3000)."""
    return SimConfig(
        layout=CloudLayout(),
        apps=paper_apps_config(
            partitions=partitions,
            initial_partition_size=initial_partition_size,
        ),
        epochs=epochs,
        seed=seed,
        server_storage=server_storage,
        base_rate=base_rate,
    )


def slashdot_scenario(*, epochs: int = 400, seed: int = 0,
                      spike_epoch: int = 100,
                      ramp_epochs: int = 25,
                      decay_epochs: int = 250,
                      base_rate: float = 3000.0,
                      peak_rate: float = 183000.0,
                      **kwargs) -> SimConfig:
    """The Fig. 4 scenario: base setup plus the Slashdot spike."""
    base = paper_scenario(epochs=epochs, seed=seed, base_rate=base_rate,
                          **kwargs)
    return replace(
        base,
        profile=slashdot_profile(
            base_rate=base_rate,
            peak_rate=peak_rate,
            spike_epoch=spike_epoch,
            ramp_epochs=ramp_epochs,
            decay_epochs=decay_epochs,
        ),
    )


def saturation_scenario(*, epochs: int = 300, seed: int = 0,
                        insert_rate: int = 2000,
                        object_size: int = 500 * 1024,
                        insert_start: int = 0,
                        insert_routing: str = "keyspace",
                        server_storage: int = 2 * GB,
                        initial_partition_size: int = 32 * MB,
                        **kwargs) -> SimConfig:
    """The Fig. 5 scenario: saturate the cloud with the insert stream.

    Defaults shrink the server disks so saturation is reached within a
    few hundred epochs at the paper's 2000 × 500 KB insert rate, and
    pick the normalizing factors this storage-bound regime calls for:
    a large eq. 1 α (storage pressure must dominate query revenue for
    full servers to shed vnodes), a tight migration margin and a short
    hysteresis (fills advance a few percent per epoch, so the economy
    must react quickly to stay balanced).
    """
    base = paper_scenario(
        epochs=epochs,
        seed=seed,
        server_storage=server_storage,
        initial_partition_size=initial_partition_size,
        **kwargs,
    )
    return replace(
        base,
        rent_model=RentModel(alpha=8.0),
        policy=EconomicPolicy(
            hysteresis=2,
            migration_margin=0.02,
            storage_headroom=0.05,
        ),
        inserts=InsertConfig(
            rate=insert_rate,
            object_size=object_size,
            start_epoch=insert_start,
            routing=insert_routing,
        ),
    )
