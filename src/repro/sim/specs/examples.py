"""The four rewritten examples as specs.

Each spec compiles to the exact :class:`SimConfig` its example script
historically hand-built (the scripts now assert that equality as a
migration guard).  ``datacenter-outage`` and ``chaos-consistency``
compile to the *faulty* twin; the examples derive their oracle twin by
stripping ``net``/``data_plane`` off the compiled config.
"""

from __future__ import annotations

from repro.sim.scenario import (
    ChaosSpec,
    ClientTraffic,
    ConstraintsSpec,
    FailureSpec,
    FlashCrowd,
    FlowsSpec,
    NetSpec,
    OperationsSpec,
    OutageEvent,
    ScenarioEntry,
    ScenarioSpec,
    ServingTraffic,
)

SPECS = (
    ScenarioEntry(ScenarioSpec(
        name="slashdot-surge",
        summary="examples/slashdot_surge: 61x spike over a 60-partition cloud",
        flows=FlowsSpec(base_rate=2000.0, surges=(
            FlashCrowd(spike_epoch=40, ramp_epochs=25, decay_epochs=120,
                       peak_factor=61.0),
        )),
        constraints=ConstraintsSpec(partitions=60),
        operations=OperationsSpec(epochs=220),
    ), pin_epochs=8),
    ScenarioEntry(ScenarioSpec(
        name="multi-tenant-sla",
        summary="examples/multi_tenant_sla: 3 tenants, 3 SLA rings, 50 epochs",
        constraints=ConstraintsSpec(partitions=60),
        operations=OperationsSpec(epochs=50),
    ), pin_epochs=8),
    ScenarioEntry(ScenarioSpec(
        name="datacenter-outage",
        summary="examples/datacenter_outage: DC dies under a lossy gossip net",
        flows=FlowsSpec(traffic=ClientTraffic()),
        constraints=ConstraintsSpec(partitions=60),
        failure=FailureSpec(
            events=(OutageEvent(epoch=30, depth=3),),
            net=NetSpec(loss=0.25, rounds_per_epoch=2, suspect_rounds=3,
                        dead_rounds=8),
        ),
        operations=OperationsSpec(epochs=60),
    ), pin_epochs=8),
    ScenarioEntry(ScenarioSpec(
        name="serving-steady",
        summary="live front door: 256 req/epoch quorum serving, steady cloud",
        flows=FlowsSpec(serving=ServingTraffic(
            requests_per_epoch=256, keyspace=128, workers=64,
        )),
        constraints=ConstraintsSpec(partitions=60),
        operations=OperationsSpec(epochs=60),
    ), pin_epochs=8),
    ScenarioEntry(ScenarioSpec(
        name="chaos-consistency",
        summary="examples/chaos_consistency: seeded fault draw + quorum audit",
        flows=FlowsSpec(traffic=ClientTraffic(ops_per_epoch=32)),
        constraints=ConstraintsSpec(partitions=40),
        failure=FailureSpec(chaos=ChaosSpec(seed=3, quiet_tail=10)),
        operations=OperationsSpec(epochs=40, audit=True),
    ), pin_epochs=12),
)
