"""Growth and SLA-tier scenarios: insert streams, ring ladders, classes.

These exercise the *constraints* tier — multi-ring tenants, explicit
thresholds, heterogeneous server classes — and the storage-bound
economy under insert-driven growth.
"""

from __future__ import annotations

from repro.cluster.server import GB, MB
from repro.sim.scenario import (
    ConfidenceSpec,
    ConstraintsSpec,
    Diurnal,
    EconomySpec,
    FlowsSpec,
    InsertStream,
    OperationsSpec,
    PolicySpec,
    ScenarioEntry,
    ScenarioSpec,
    ServerClassesSpec,
    StructureSpec,
    TenantSpec,
    TierSpec,
)

SPECS = (
    ScenarioEntry(ScenarioSpec(
        name="insert-popularity-growth",
        summary="popularity-routed inserts: growth follows the query skew",
        structure=StructureSpec(classes=ServerClassesSpec(storage=2 * GB)),
        flows=FlowsSpec(inserts=InsertStream(routing="popularity")),
        constraints=ConstraintsSpec(
            partitions=24,
            initial_size=32 * MB,
            policy=PolicySpec(hysteresis=2, migration_margin=0.02,
                              storage_headroom=0.05),
            economy=EconomySpec(alpha=8.0),
        ),
        operations=OperationsSpec(epochs=30, seed=31),
    ), pin_epochs=8),
    ScenarioEntry(ScenarioSpec(
        name="insert-diurnal-mix",
        summary="insert stream under a diurnal query cycle (growth + waves)",
        structure=StructureSpec(classes=ServerClassesSpec(storage=3 * GB)),
        flows=FlowsSpec(
            inserts=InsertStream(rate=1000),
            diurnal=Diurnal(period=8, amplitude=0.5),
        ),
        constraints=ConstraintsSpec(
            partitions=24,
            initial_size=48 * MB,
            economy=EconomySpec(alpha=4.0),
        ),
        operations=OperationsSpec(epochs=30, seed=32),
    ), pin_epochs=8),
    ScenarioEntry(ScenarioSpec(
        name="sla-ladder",
        summary="one tenant climbing 2/3/4-replica rings + a basic tenant",
        constraints=ConstraintsSpec(
            tenants=(
                TenantSpec(name="premium", share=0.75, tiers=(
                    TierSpec(replicas=2, partitions=12),
                    TierSpec(replicas=3, partitions=12),
                    TierSpec(replicas=4, partitions=12),
                )),
                TenantSpec(name="basic", share=0.25, tiers=(
                    TierSpec(replicas=2, partitions=12),
                )),
            ),
        ),
        operations=OperationsSpec(epochs=30, seed=33),
    ), pin_epochs=8),
    ScenarioEntry(ScenarioSpec(
        name="premium-classes",
        summary="60% expensive servers at 200$ rent + shaky-country trust",
        structure=StructureSpec(
            classes=ServerClassesSpec(
                cheap_rent=80.0, expensive_rent=200.0,
                expensive_fraction=0.6,
            ),
            confidence=ConfidenceSpec(
                base=0.98, country_factors={2: 0.85, 6: 0.9},
            ),
        ),
        constraints=ConstraintsSpec(partitions=24),
        operations=OperationsSpec(epochs=30, seed=34, rtol=1e-9),
    ), pin_epochs=8),
)
