"""Fault-plane scenarios: lossy gossip, partitions, flaps, chaos audits.

These exercise the *failure* tier — explicit window schedules over
:class:`repro.net.model.NetConfig`, seeded chaos draws, and the
stale-view data plane riding on top.
"""

from __future__ import annotations

from repro.sim.scenario import (
    ChaosSpec,
    ClientTraffic,
    ConstraintsSpec,
    FailureSpec,
    FlapWindow,
    FlowsSpec,
    JoinWave,
    NetSpec,
    OperationsSpec,
    OutageEvent,
    PartitionWindow,
    ScenarioEntry,
    ScenarioSpec,
)

SPECS = (
    ScenarioEntry(ScenarioSpec(
        name="lossy-gossip",
        summary="10% heartbeat loss, no cuts: false-suspicion economics",
        constraints=ConstraintsSpec(partitions=24),
        failure=FailureSpec(net=NetSpec(
            loss=0.1, rounds_per_epoch=2, suspect_rounds=3, dead_rounds=8,
        )),
        operations=OperationsSpec(epochs=30, seed=41),
    ), pin_epochs=8),
    ScenarioEntry(ScenarioSpec(
        name="asym-partition-quorum",
        summary="asymmetric country cut while quorum traffic keeps flowing",
        flows=FlowsSpec(traffic=ClientTraffic(ops_per_epoch=32)),
        constraints=ConstraintsSpec(partitions=24),
        failure=FailureSpec(net=NetSpec(
            loss=0.05, rounds_per_epoch=2, suspect_rounds=3, dead_rounds=8,
            partitions=(PartitionWindow(start=6, heal=14, depth=2,
                                        asymmetric=True),),
        )),
        operations=OperationsSpec(epochs=28, seed=42),
    ), pin_epochs=10),
    ScenarioEntry(ScenarioSpec(
        name="flap-storm",
        summary="three overlapping link-flap windows under light loss",
        flows=FlowsSpec(traffic=ClientTraffic(ops_per_epoch=24)),
        constraints=ConstraintsSpec(partitions=24),
        failure=FailureSpec(net=NetSpec(
            loss=0.03, rounds_per_epoch=2, suspect_rounds=3, dead_rounds=8,
            flaps=(FlapWindow(start=4, heal=9),
                   FlapWindow(start=7, heal=13),
                   FlapWindow(start=11, heal=16)),
        )),
        operations=OperationsSpec(epochs=28, seed=43),
    ), pin_epochs=10),
    ScenarioEntry(ScenarioSpec(
        name="shaky-region-churn",
        summary="a room outage + replacement join wave on a lossy net",
        constraints=ConstraintsSpec(partitions=24),
        failure=FailureSpec(
            events=(OutageEvent(epoch=8, depth=4),
                    JoinWave(epoch=12, count=10)),
            net=NetSpec(loss=0.08, rounds_per_epoch=2, suspect_rounds=3,
                        dead_rounds=8),
        ),
        operations=OperationsSpec(epochs=30, seed=44),
    ), pin_epochs=10),
    ScenarioEntry(ScenarioSpec(
        name="chaos-audit-7",
        summary="chaos draw #7: random faults, quorum traffic, audit armed",
        flows=FlowsSpec(traffic=ClientTraffic(ops_per_epoch=24)),
        constraints=ConstraintsSpec(partitions=30),
        failure=FailureSpec(chaos=ChaosSpec(seed=7, quiet_tail=8)),
        operations=OperationsSpec(epochs=24, seed=7, audit=True),
    ), pin_epochs=12),
    ScenarioEntry(ScenarioSpec(
        name="zipf-dataplane-steady",
        summary="steady zipf quorum traffic on an honest (oracle) view",
        flows=FlowsSpec(traffic=ClientTraffic(ops_per_epoch=64,
                                              keyspace=128)),
        constraints=ConstraintsSpec(partitions=24),
        operations=OperationsSpec(epochs=24, seed=45),
    ), pin_epochs=8),
)
