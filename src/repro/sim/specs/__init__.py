"""The named-scenario registry: every scenario as declarative data.

Each submodule contributes a ``SPECS`` tuple of
:class:`repro.sim.scenario.ScenarioEntry` rows; this package assembles
them into :data:`REGISTRY` keyed by scenario name.  A registry entry
pairs the spec with ``pin_epochs`` — the short horizon
``tests/integration/test_named_scenarios.py`` runs it for when pinning
its frame digest (shorter than the spec's own horizon so the whole
catalog stays cheap to sweep).

The lint gate (``tests/test_lint.py``) enforces that every module in
this package contributes a non-empty ``SPECS`` reachable from
:data:`REGISTRY`, and that every registry name has a committed golden
digest — a scenario cannot be added without being pinned.

Run any entry from the command line::

    PYTHONPATH=src python -m repro.cli scenario run paper-uniform
"""

from __future__ import annotations

from typing import Dict, List

from repro.sim.scenario import ScenarioEntry, SpecError

from repro.sim.specs import examples, faults, growth, paper, surges

MODULES = (paper, examples, surges, growth, faults)

REGISTRY: Dict[str, ScenarioEntry] = {}
for _module in MODULES:
    for _entry in _module.SPECS:
        if _entry.name in REGISTRY:
            raise SpecError(f"duplicate scenario name {_entry.name!r}")
        REGISTRY[_entry.name] = _entry


def names() -> List[str]:
    """All registered scenario names, sorted."""
    return sorted(REGISTRY)


def get(name: str) -> ScenarioEntry:
    """Look up one registry entry by name."""
    try:
        return REGISTRY[name]
    except KeyError:
        raise SpecError(
            f"unknown scenario {name!r} (have: {', '.join(names())})"
        ) from None
