"""Load-surge scenarios: flash crowds, diurnal cycles, tight budgets.

These exercise the *flows* tier's composition seams — multi-surge
cascades, sinusoidal day/night cycles, regional phase inversion — and
the economy's contraction/expansion loop under them.
"""

from __future__ import annotations

import dataclasses

from repro.cluster.server import MB
from repro.sim.scenario import (
    ConstraintsSpec,
    Diurnal,
    FailureSpec,
    FlashCrowd,
    FlowsSpec,
    GeoSpec,
    JoinWave,
    LeaveWave,
    OperationsSpec,
    ScenarioEntry,
    ScenarioSpec,
    paper_tenants,
)


def _regional_tenants(partitions: int, countries):
    """Paper tenants, each pinned to its own hotspot country."""
    return tuple(
        dataclasses.replace(
            tenant, geography=GeoSpec(kind="hotspot", country=country)
        )
        for tenant, country in zip(paper_tenants(partitions=partitions),
                                   countries)
    )


SPECS = (
    ScenarioEntry(ScenarioSpec(
        name="flash-crowd-cascade",
        summary="two back-to-back flash crowds: contraction meets re-expansion",
        flows=FlowsSpec(surges=(
            FlashCrowd(spike_epoch=6, ramp_epochs=3, decay_epochs=8,
                       peak_factor=20.0),
            FlashCrowd(spike_epoch=20, ramp_epochs=2, decay_epochs=10,
                       peak_factor=40.0),
        )),
        constraints=ConstraintsSpec(partitions=24),
        operations=OperationsSpec(epochs=40, seed=21),
    ), pin_epochs=8),
    ScenarioEntry(ScenarioSpec(
        name="diurnal-two-region",
        summary="day/night sine cycle over two regional hotspot tenants",
        flows=FlowsSpec(diurnal=Diurnal(period=12, amplitude=0.6)),
        constraints=ConstraintsSpec(
            tenants=_regional_tenants(24, (0, 5, 8)),
            partitions=24,
        ),
        operations=OperationsSpec(epochs=36, seed=22),
    ), pin_epochs=8),
    ScenarioEntry(ScenarioSpec(
        name="hotspot-inversion",
        summary="antipodal hotspots + phase-shifted diurnal = load inversion",
        flows=FlowsSpec(
            diurnal=Diurnal(period=10, amplitude=0.8, phase=5),
            surges=(FlashCrowd(spike_epoch=12, ramp_epochs=2,
                               decay_epochs=6, peak_factor=8.0),),
        ),
        constraints=ConstraintsSpec(
            tenants=_regional_tenants(20, (0, 9, 4)),
            partitions=20,
        ),
        operations=OperationsSpec(epochs=30, seed=23),
    ), pin_epochs=8),
    ScenarioEntry(ScenarioSpec(
        name="budget-crunch",
        summary="a 20x surge against quartered replication/migration budgets",
        flows=FlowsSpec(surges=(
            FlashCrowd(spike_epoch=6, ramp_epochs=3, decay_epochs=10,
                       peak_factor=20.0),
        )),
        constraints=ConstraintsSpec(
            partitions=24,
            replication_budget=128 * MB,
            migration_budget=32 * MB,
        ),
        operations=OperationsSpec(epochs=30, seed=24),
    ), pin_epochs=8),
    ScenarioEntry(ScenarioSpec(
        name="elastic-spike",
        summary="Fig. 3 meets Fig. 4: servers join at the ramp, leave after",
        flows=FlowsSpec(surges=(
            FlashCrowd(spike_epoch=8, ramp_epochs=4, decay_epochs=12,
                       peak_factor=30.0),
        )),
        constraints=ConstraintsSpec(partitions=24),
        failure=FailureSpec(events=(
            JoinWave(epoch=9, count=20),
            LeaveWave(epoch=28, count=20),
        )),
        operations=OperationsSpec(epochs=36, seed=25),
    ), pin_epochs=8),
)
