"""The seven legacy golden scenarios, re-expressed as specs.

Each spec compiles to a :class:`SimConfig` *equal* to what the
hand-built factory in ``tests/integration/golden_scenarios.py``
historically produced (dataclass equality — same floats, same
defaults), so the committed golden frame streams stay byte-identical.
``tests/sim/test_scenario_spec.py`` pins that equality explicitly.
"""

from __future__ import annotations

import dataclasses

from repro.cluster.server import GB, MB
from repro.sim.scenario import (
    ConfidenceSpec,
    ConstraintsSpec,
    EconomySpec,
    FailureSpec,
    FlashCrowd,
    FlowsSpec,
    GeoSpec,
    InsertStream,
    JoinWave,
    LeaveWave,
    OperationsSpec,
    PolicySpec,
    ScenarioEntry,
    ScenarioSpec,
    ServerClassesSpec,
    StructureSpec,
    paper_tenants,
)


def _discrete_geo_tenants():
    tenants = list(paper_tenants(partitions=24))
    tenants[0] = dataclasses.replace(
        tenants[0], geography=GeoSpec(kind="hotspot", country=0)
    )
    tenants[1] = dataclasses.replace(
        tenants[1],
        geography=GeoSpec(kind="mixture", components=(
            (GeoSpec(kind="hotspot", country=3), 0.7),
            (GeoSpec(kind="hotspot", country=7), 0.3),
        )),
    )
    # tenants[2] keeps the uniform geography: the mixed case exercises
    # the per-app dispatch between the g-path and the uniform fast path.
    return tuple(tenants)


SPECS = (
    ScenarioEntry(ScenarioSpec(
        name="paper-uniform",
        summary="§III-A base cloud: 200 servers, 3 tenants, Poisson(3000)",
        constraints=ConstraintsSpec(partitions=40),
        operations=OperationsSpec(epochs=30, seed=1),
    ), pin_epochs=8),
    ScenarioEntry(ScenarioSpec(
        name="slashdot-spike",
        summary="Fig. 4 in miniature: 61x flash crowd, expansion then decay",
        flows=FlowsSpec(surges=(
            FlashCrowd(spike_epoch=8, ramp_epochs=5, decay_epochs=18,
                       peak_factor=61.0),
        )),
        constraints=ConstraintsSpec(partitions=24),
        operations=OperationsSpec(epochs=40, seed=2),
    ), pin_epochs=8),
    ScenarioEntry(ScenarioSpec(
        name="saturation-splits",
        summary="Fig. 5 insert stream saturating shrunken 2 GB disks",
        structure=StructureSpec(classes=ServerClassesSpec(storage=2 * GB)),
        flows=FlowsSpec(inserts=InsertStream()),
        constraints=ConstraintsSpec(
            partitions=24,
            initial_size=32 * MB,
            policy=PolicySpec(hysteresis=2, migration_margin=0.02,
                              storage_headroom=0.05),
            economy=EconomySpec(alpha=8.0),
        ),
        operations=OperationsSpec(epochs=30, seed=3),
    ), pin_epochs=8),
    ScenarioEntry(ScenarioSpec(
        name="fig3-elasticity",
        summary="Fig. 3 churn: +12 servers at epoch 8, -12 at epoch 20",
        constraints=ConstraintsSpec(partitions=24),
        failure=FailureSpec(events=(
            JoinWave(epoch=8, count=12),
            LeaveWave(epoch=20, count=12),
        )),
        operations=OperationsSpec(epochs=40, seed=4),
    ), pin_epochs=10),
    ScenarioEntry(ScenarioSpec(
        name="discrete-geo",
        summary="regional tenants: hotspot + mixture geographies (eq. 4)",
        constraints=ConstraintsSpec(tenants=_discrete_geo_tenants()),
        operations=OperationsSpec(epochs=30, seed=5),
    ), pin_epochs=8),
    ScenarioEntry(ScenarioSpec(
        name="confidence-tiers",
        summary="fractional per-country trust tiers (eq. 2 at rtol 1e-9)",
        structure=StructureSpec(confidence=ConfidenceSpec(
            base=0.97, country_factors={0: 0.9, 3: 0.85, 7: 0.95},
        )),
        constraints=ConstraintsSpec(partitions=24),
        operations=OperationsSpec(epochs=30, seed=7, rtol=1e-9),
    ), pin_epochs=8),
    ScenarioEntry(ScenarioSpec(
        name="churn-confidence",
        summary="fractional confidences plus join/leave waves mid-run",
        structure=StructureSpec(confidence=ConfidenceSpec(
            base=0.96, country_factors={1: 0.88, 4: 0.92, 8: 0.97},
        )),
        constraints=ConstraintsSpec(partitions=24),
        failure=FailureSpec(events=(
            JoinWave(epoch=8, count=14),
            LeaveWave(epoch=18, count=14),
        )),
        operations=OperationsSpec(epochs=30, seed=11, rtol=1e-9),
    ), pin_epochs=10),
)
