"""Discrete-epoch simulator: configs, engine, metrics, reporting."""

from repro.sim.config import (
    AppConfig,
    ConfigError,
    InsertConfig,
    RingConfig,
    SimConfig,
    paper_apps_config,
    paper_scenario,
    saturation_scenario,
    slashdot_scenario,
)
from repro.sim.engine import (
    DeciderFactory,
    SimContext,
    Simulation,
    SimulationError,
    economic_decider,
)
from repro.sim.metrics import (
    EpochFrame,
    FrameStore,
    MetricsError,
    MetricsLog,
    ServerVnodeHistogram,
    load_balance_index,
)
from repro.sim.reporting import (
    format_table,
    histogram_table,
    sample_epochs,
    series_table,
    summarize,
)
from repro.sim.seeds import STREAMS, RngStreams, SeedError

__all__ = [
    "AppConfig",
    "ConfigError",
    "DeciderFactory",
    "EpochFrame",
    "FrameStore",
    "InsertConfig",
    "MetricsError",
    "MetricsLog",
    "RingConfig",
    "ServerVnodeHistogram",
    "RngStreams",
    "STREAMS",
    "SeedError",
    "SimConfig",
    "SimContext",
    "Simulation",
    "SimulationError",
    "economic_decider",
    "format_table",
    "histogram_table",
    "load_balance_index",
    "paper_apps_config",
    "paper_scenario",
    "sample_epochs",
    "saturation_scenario",
    "series_table",
    "slashdot_scenario",
    "summarize",
]
