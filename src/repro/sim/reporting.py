"""Plain-text reporting of simulation results.

The benchmark harness must *print* the rows/series each figure plots;
these helpers render epoch series and summary tables as aligned ASCII,
so ``pytest benchmarks/ --benchmark-only -s`` regenerates the paper's
evaluation in the terminal.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.sim.metrics import MetricsLog


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned ASCII table."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells for {len(headers)} headers"
            )
        cells.append([
            f"{v:.4g}" if isinstance(v, float) else str(v) for v in row
        ])
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for i, row in enumerate(cells):
        lines.append(
            "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
        )
        if i == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def sample_epochs(n_epochs: int, points: int = 20) -> List[int]:
    """Pick ~``points`` evenly spaced epoch indices, always including ends."""
    if n_epochs <= 0:
        return []
    if n_epochs <= points:
        return list(range(n_epochs))
    idx = np.linspace(0, n_epochs - 1, points)
    return sorted(set(int(round(i)) for i in idx))


def series_table(log: MetricsLog,
                 columns: Dict[str, np.ndarray],
                 points: int = 20) -> str:
    """Tabulate named epoch series at sampled epochs."""
    epochs = log.epochs()
    picks = sample_epochs(len(epochs), points)
    headers = ["epoch"] + list(columns)
    rows = []
    for i in picks:
        row: List[object] = [epochs[i]]
        for series in columns.values():
            row.append(float(series[i]))
        rows.append(row)
    return format_table(headers, rows)


def histogram_table(values: Dict[int, int], *,
                    key_header: str = "server",
                    value_header: str = "vnodes",
                    bins: int = 10) -> str:
    """Bucket a per-server histogram into a compact distribution table."""
    if not values:
        return "(empty)"
    counts = np.array(sorted(values.values()), dtype=np.float64)
    lo, hi = counts.min(), counts.max()
    if lo == hi:
        return format_table(
            [f"{value_header} per {key_header}", "servers"],
            [[f"{int(lo)}", len(counts)]],
        )
    edges = np.linspace(lo, hi + 1e-9, bins + 1)
    rows = []
    for i in range(bins):
        in_bin = int(((counts >= edges[i]) & (counts < edges[i + 1])).sum())
        rows.append([f"[{edges[i]:.1f}, {edges[i + 1]:.1f})", in_bin])
    return format_table(
        [f"{value_header} per {key_header}", "servers"], rows
    )


def summarize(log: MetricsLog) -> str:
    """One-paragraph run summary used by every bench footer."""
    last = log.last
    actions = log.action_totals()
    lines = [
        f"epochs: {len(log)}",
        f"final vnodes: {last.vnodes_total} on {last.live_servers} servers",
        f"final storage: {last.storage_fraction:.1%} "
        f"({last.storage_used}/{last.storage_capacity} bytes)",
        "actions: "
        + ", ".join(f"{k}={v}" for k, v in actions.items()),
        f"final prices: min={last.min_price:.4f} "
        f"mean={last.mean_price:.4f} max={last.max_price:.4f}",
        f"unsatisfied partitions (last epoch): {last.unsatisfied_partitions}",
        f"lost partitions (last epoch): {last.lost_partitions}",
    ]
    return "\n".join(lines)
