"""Per-ring / per-tenant SLA evaluation for the serving front door.

The paper's economics are availability economics — replicas are bought
to keep availability above per-ring thresholds.  The SLA view closes
the loop to what users actually see: each ring (one tenant's
availability tier) gets a latency target per operation kind, every
request is judged against it, and the ledger reports attainment per
tenant.  A failed request (no quorum) always violates — unavailability
is the worst latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.serve.loadgen import ServeError


@dataclass(frozen=True)
class SlaPolicy:
    """Latency targets (milliseconds) per operation kind."""

    read_ms: float = 60.0
    write_ms: float = 150.0

    def __post_init__(self) -> None:
        if self.read_ms <= 0 or self.write_ms <= 0:
            raise ServeError(
                f"SLA targets must be > 0, got read {self.read_ms} / "
                f"write {self.write_ms}"
            )

    def target(self, kind: str) -> float:
        return self.read_ms if kind == "get" else self.write_ms


class SlaLedger:
    """Counts requests and SLA violations per (app_id, ring_id) tenant."""

    def __init__(self, policy: SlaPolicy) -> None:
        self.policy = policy
        # (app_id, ring_id) -> [requests, read_violations, write_violations]
        self._tenants: Dict[Tuple[int, int], list] = {}
        self.read_violations = 0
        self.write_violations = 0
        self._epoch_base = (0, 0)

    def record(self, app_id: int, ring_id: int, kind: str,
               latency_ms: float, ok: bool) -> bool:
        """Judge one request; returns True when it violated its SLA."""
        row = self._tenants.setdefault((app_id, ring_id), [0, 0, 0])
        row[0] += 1
        violated = (not ok) or latency_ms > self.policy.target(kind)
        if violated:
            if kind == "get":
                row[1] += 1
                self.read_violations += 1
            else:
                row[2] += 1
                self.write_violations += 1
        return violated

    def begin_epoch(self) -> None:
        """Snapshot counters so :meth:`epoch_counts` reports deltas."""
        self._epoch_base = (self.read_violations, self.write_violations)

    def epoch_counts(self) -> Tuple[int, int]:
        """(read, write) violation deltas since :meth:`begin_epoch`."""
        return (
            self.read_violations - self._epoch_base[0],
            self.write_violations - self._epoch_base[1],
        )

    def tenant_view(self) -> Dict[Tuple[int, int], Dict[str, float]]:
        """Whole-run attainment per tenant ring.

        ``attainment`` is the fraction of requests inside their SLA —
        the user-visible counterpart of the ring's availability tier.
        """
        out: Dict[Tuple[int, int], Dict[str, float]] = {}
        for tenant, (requests, reads, writes) in sorted(
            self._tenants.items()
        ):
            violations = reads + writes
            out[tenant] = {
                "requests": requests,
                "read_violations": reads,
                "write_violations": writes,
                "attainment": (
                    1.0 - violations / requests if requests else 1.0
                ),
            }
        return out
