"""Live-serving front door over the quorum data plane.

The subpackage that turns the simulator's stored state into
user-visible latency: open-loop load generation
(:mod:`repro.serve.loadgen`), a deterministic request scheduler that
costs every get/put with RTTs along its quorum path
(:mod:`repro.serve.frontend`), and per-tenant SLA attainment
(:mod:`repro.serve.sla`).
"""

from repro.serve.frontend import ServingFrontEnd
from repro.serve.loadgen import Arrival, LoadGenerator, ServeError
from repro.serve.sla import SlaLedger, SlaPolicy

__all__ = [
    "Arrival",
    "LoadGenerator",
    "ServeError",
    "ServingFrontEnd",
    "SlaLedger",
    "SlaPolicy",
]
