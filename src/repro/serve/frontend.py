"""The live-serving front door: request scheduler over the quorum store.

:class:`ServingFrontEnd` is what the engine instantiates when a
:class:`repro.sim.config.ServingConfig` is attached: the open-loop
:class:`~repro.serve.loadgen.LoadGenerator` produces each epoch's
arrival stream, a deterministic event-loop scheduler admits requests
onto ``workers`` virtual executors, each request is routed through
:class:`repro.ring.router.Router` (believed membership, lowest-id tie
break) to its coordinator replica and executed against a
:class:`repro.store.quorum.QuorumKVStore`, and its latency is costed
with :class:`repro.analysis.latency.LatencyModel` RTTs along the
quorum path:

* **coordinator hop** — client → nearest believed-live replica, the
  route the Router resolves;
* **replica fan-out** — the coordinator contacts the quorum in
  parallel, so the fan-out costs the *slowest* contacted leg
  (coordinator → replica RTT for acks, the timeout penalty for ghosts
  and cut links);
* **queueing delay** — an arrival finding every worker busy waits; the
  wait lands in the latency tails, which is how overload becomes
  user-visible.

The scheduler is an explicit event loop over *simulated* time rather
than an OS thread pool: store mutations execute in arrival order, so a
run replays bit-identically (same spec + seed ⇒ the identical
``ServingFrame`` stream) — the property the golden suite demands and
preemptive threads cannot give.

Like the data-plane overlay, the front door is side-effect-free toward
the economy: own copies, own hints, own RNG stream, no writes to
partition sizes or server state — enabling it leaves the golden
EpochFrame streams byte-identical.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.latency import LatencyModel
from repro.cluster.location import Location, diversity
from repro.ring.router import Router, RoutingError
from repro.ring.virtualring import RingSet
from repro.serve.loadgen import Arrival, LoadGenerator
from repro.serve.sla import SlaLedger, SlaPolicy
from repro.store.hints import HintStore
from repro.store.quorum import Level, QuorumError, QuorumKVStore
from repro.store.replica import ReplicaCatalog

# NOTE: repro.sim.metrics is imported lazily inside _collect so this
# module can be imported from either package side without a cycle.


class ServingFrontEnd:
    """Owns the request-serving stack for one simulation run."""

    def __init__(self, config, cloud, rings: RingSet,
                 catalog: ReplicaCatalog, membership, *,
                 rng: np.random.Generator,
                 apps: Sequence[Tuple[int, int]],
                 sites: Sequence[Location] = (),
                 latency_model: Optional[LatencyModel] = None) -> None:
        self.config = config
        self.level = Level(config.level)
        self.model = (
            latency_model if latency_model is not None else LatencyModel()
        )
        self._cloud = cloud
        self.router = Router(cloud, rings, catalog, membership=membership)
        self.hints = HintStore(
            ttl=config.hint_ttl,
            base_delay=config.hint_base_delay,
            cap=config.hint_backoff_cap,
        )
        self.store = QuorumKVStore(
            cloud, rings, catalog,
            read_repair=config.read_repair,
            membership=membership,
            hints=self.hints,
            track_catalog=True,
        )
        self.sla = SlaLedger(SlaPolicy(
            read_ms=config.sla_read_ms, write_ms=config.sla_write_ms,
        ))
        self.loadgen: Optional[LoadGenerator] = None
        if config.requests_per_epoch > 0:
            self.loadgen = LoadGenerator(
                apps=apps,
                requests_per_epoch=config.requests_per_epoch,
                read_fraction=config.read_fraction,
                keyspace=config.keyspace,
                value_size=config.value_size,
                epoch_ms=config.epoch_ms,
                rng=rng,
                sites=sites,
            )
        #: Cleared (e.g. during an audit settle phase) to stop
        #: admitting requests while hints keep draining.
        self.serving_enabled = True
        self.total_requests = 0
        self.total_failures = 0
        # Durability ground truth: the freshest version each key was
        # *acknowledged* at.  Bounded by the keyspace, so keeping every
        # entry is cheap, and :meth:`lost_writes` can audit that no
        # acked write ever stops surviving (copies + parked hints).
        self._acked: Dict[Tuple[int, int, bytes], int] = {}

    # -- epoch loop ------------------------------------------------------------

    def step(self, epoch: int):
        """Serve one epoch's arrivals; returns its ServingFrame."""
        self.store.begin_epoch(epoch)
        self.sla.begin_epoch()
        read_lat: List[float] = []
        write_lat: List[float] = []
        queue_wait = 0.0
        read_failures = write_failures = 0
        if self.loadgen is not None and self.serving_enabled:
            arrivals = self.loadgen.draw(epoch)
            stats = self._serve(arrivals, read_lat, write_lat)
            queue_wait, read_failures, write_failures = stats
        self.store.drain_hints(epoch)
        cfg = self.config
        if cfg.anti_entropy_partitions > 0:
            self.store.anti_entropy(
                epoch,
                max_partitions=cfg.anti_entropy_partitions,
                max_bytes=cfg.anti_entropy_bytes,
            )
        return self._collect(
            epoch, read_lat, write_lat, queue_wait,
            read_failures, write_failures,
        )

    def _serve(self, arrivals: List[Arrival],
               read_lat: List[float],
               write_lat: List[float]) -> Tuple[float, int, int]:
        """Admit one epoch's arrivals through the event-loop scheduler.

        ``workers`` virtual executors are modelled as a min-heap of
        free times: each arrival (already in time order) starts at
        ``max(arrival, earliest free worker)``, runs for its costed
        quorum-path service time, and its user-visible latency is
        queueing wait plus service.  Execution order equals arrival
        order, which is what keeps the store state — and therefore the
        whole frame stream — replayable.
        """
        free = [0.0] * self.config.workers
        heapq.heapify(free)
        total_wait = 0.0
        read_failures = write_failures = 0
        for arrival in arrivals:
            worker_free = heapq.heappop(free)
            start = max(arrival.offset_ms, worker_free)
            service_ms, ok = self._execute(arrival)
            heapq.heappush(free, start + service_ms)
            latency = (start - arrival.offset_ms) + service_ms
            total_wait += start - arrival.offset_ms
            self.total_requests += 1
            if not ok:
                self.total_failures += 1
                if arrival.kind == "get":
                    read_failures += 1
                else:
                    write_failures += 1
            if arrival.kind == "get":
                read_lat.append(latency)
            else:
                write_lat.append(latency)
            self.sla.record(
                arrival.app_id, arrival.ring_id, arrival.kind,
                latency, ok,
            )
        return total_wait, read_failures, write_failures

    def _execute(self, arrival: Arrival) -> Tuple[float, bool]:
        """Run one request; returns (service time in ms, success).

        The service time is the RTT cost along the quorum path: the
        client→coordinator hop resolved by the Router, plus the
        slowest leg of the coordinator's replica fan-out.  A replica
        that times out (ghost) or is unreachable (cut link) costs the
        configured timeout penalty — the coordinator waits it out —
        and a failed quorum costs at least that penalty on top of the
        hop, since the coordinator gave up only after waiting.
        """
        cfg = self.config
        model = self.model
        pid = self.router.partition_of(
            arrival.app_id, arrival.ring_id, arrival.key
        ).pid
        try:
            route = self.router.route_partition(
                pid, client=arrival.client
            )
        except RoutingError:
            # No believed-live replica at all: the client burns a full
            # timeout against a dead partition.
            return cfg.timeout_penalty_ms, False
        coordinator_ms = model.rtt(route.distance)
        coord_loc = self._cloud.server(route.server_id).location
        try:
            if arrival.kind == "get":
                result = self.store.get(
                    arrival.app_id, arrival.ring_id, arrival.key,
                    level=self.level, client=arrival.client,
                )
            else:
                result = self.store.put(
                    arrival.app_id, arrival.ring_id, arrival.key,
                    arrival.value, level=self.level,
                    client=arrival.client,
                )
        except QuorumError:
            return coordinator_ms + cfg.timeout_penalty_ms, False
        if arrival.kind == "put":
            acked_key = (arrival.app_id, arrival.ring_id, arrival.key)
            if result.version > self._acked.get(acked_key, 0):
                self._acked[acked_key] = result.version
        fan_out = 0.0
        for sid, outcome in result.attempts:
            if outcome == "ok":
                leg = model.rtt(diversity(
                    coord_loc, self._cloud.server(sid).location
                ))
            elif outcome in ("timeout", "unreachable"):
                leg = cfg.timeout_penalty_ms
            else:  # skipped: believed dead, never contacted
                continue
            if leg > fan_out:
                fan_out = leg
        return coordinator_ms + fan_out, True

    # -- frame collection ------------------------------------------------------

    def _collect(self, epoch: int, read_lat: List[float],
                 write_lat: List[float], queue_wait: float,
                 read_failures: int, write_failures: int):
        from repro.sim.metrics import ServingFrame

        def tails(latencies: List[float]) -> Tuple[float, float, float]:
            if not latencies:
                return (0.0, 0.0, 0.0)
            arr = np.asarray(latencies, dtype=np.float64)
            return (
                float(np.percentile(arr, 50)),
                float(np.percentile(arr, 99)),
                float(np.percentile(arr, 99.9)),
            )

        read_p50, read_p99, read_p999 = tails(read_lat)
        write_p50, write_p99, write_p999 = tails(write_lat)
        requests = len(read_lat) + len(write_lat)
        sla_reads, sla_writes = self.sla.epoch_counts()
        return ServingFrame(
            epoch=epoch,
            requests=requests,
            reads=len(read_lat),
            writes=len(write_lat),
            read_failures=read_failures,
            write_failures=write_failures,
            sla_read_violations=sla_reads,
            sla_write_violations=sla_writes,
            requests_per_sec=requests / (self.config.epoch_ms / 1000.0),
            read_p50_ms=read_p50,
            read_p99_ms=read_p99,
            read_p999_ms=read_p999,
            write_p50_ms=write_p50,
            write_p99_ms=write_p99,
            write_p999_ms=write_p999,
            mean_queue_ms=(queue_wait / requests if requests else 0.0),
        )

    # -- audit ground truth ----------------------------------------------------

    def surviving_version(self, app_id: int, ring_id: int,
                          key: bytes) -> int:
        """Freshest surviving version (copies + parked hints) of a key."""
        return self.store.surviving_version(app_id, ring_id, key)

    def lost_writes(self) -> List[Tuple[int, int, bytes, int, int]]:
        """Acked writes no surviving copy or hint still carries.

        Returns ``(app_id, ring_id, key, acked_version, surviving)``
        rows; empty means the sloppy-quorum durability contract held
        for every request the front door acknowledged.
        """
        lost = []
        for (app_id, ring_id, key), version in sorted(
            self._acked.items()
        ):
            surviving = self.store.surviving_version(app_id, ring_id, key)
            if surviving < version:
                lost.append((app_id, ring_id, key, version, surviving))
        return lost
