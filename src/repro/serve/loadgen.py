"""Open-loop arrival generation for the serving front door.

A real front door does not wait for one request to finish before the
next one arrives: load is *open-loop* — arrivals come from an external
client population at their own pace, and a slow backend shows up as
queueing delay, not as a slower arrival rate.  :class:`LoadGenerator`
models that with exponential inter-arrival gaps (a Poisson process)
over the epoch's ``epoch_ms`` window, drawn from the dedicated
``serving`` RNG stream so enabling the front door perturbs no other
stochastic component.

Per-request fields are drawn in a fixed order (gap, app, key, site,
read/write coin) from one generator, which is the determinism contract
the replay tests pin: same spec + seed ⇒ the identical arrival stream,
epoch by epoch.

Keys follow the same Zipf(1) skew the data-plane clients and the
query-popularity model use (rank ``i`` drawn with probability
∝ 1/(i+1)), under a distinct ``sv-`` key prefix so serving traffic
never collides with data-plane audit keys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.location import Location


class ServeError(ValueError):
    """Raised for invalid serving front-door parameters."""


@dataclass(frozen=True)
class Arrival:
    """One admitted request: what, where from, and when it arrived."""

    offset_ms: float  # arrival time within the epoch's window
    kind: str  # "get" | "put"
    app_id: int
    ring_id: int
    key: bytes
    value: Optional[bytes]  # None for gets
    client: Optional[Location]


class LoadGenerator:
    """Poisson arrivals of get/put requests over a Zipf key universe."""

    def __init__(self, *, apps: Sequence[Tuple[int, int]],
                 requests_per_epoch: int, read_fraction: float,
                 keyspace: int, value_size: int, epoch_ms: float,
                 rng: np.random.Generator,
                 sites: Sequence[Location] = ()) -> None:
        if not apps:
            raise ServeError("need at least one (app_id, ring_id)")
        if requests_per_epoch < 0:
            raise ServeError(
                f"requests_per_epoch must be >= 0, got "
                f"{requests_per_epoch}"
            )
        if not 0.0 <= read_fraction <= 1.0:
            raise ServeError(
                f"read_fraction must be in [0, 1], got {read_fraction}"
            )
        if keyspace < 1:
            raise ServeError(f"keyspace must be >= 1, got {keyspace}")
        if value_size < 1:
            raise ServeError(f"value_size must be >= 1, got {value_size}")
        if epoch_ms <= 0:
            raise ServeError(f"epoch_ms must be > 0, got {epoch_ms}")
        self._apps = tuple(apps)
        self._requests = requests_per_epoch
        self._read_fraction = read_fraction
        self._value_size = value_size
        self._epoch_ms = epoch_ms
        self._rng = rng
        self._sites = tuple(sites)
        self._keys = tuple(
            f"sv-{i:06d}".encode("ascii") for i in range(keyspace)
        )
        weights = 1.0 / (np.arange(keyspace, dtype=np.float64) + 1.0)
        self._weights = weights / weights.sum()
        # Open loop: the mean gap keeps the configured rate regardless
        # of how fast the backend drains.
        self._mean_gap_ms = epoch_ms / max(requests_per_epoch, 1)

    @property
    def keys(self) -> Tuple[bytes, ...]:
        return self._keys

    def _value(self, epoch: int, index: int) -> bytes:
        stamp = f"sv-e{epoch}-i{index}-".encode("ascii")
        pad = self._value_size - len(stamp)
        if pad <= 0:
            return stamp[: self._value_size]
        return stamp + b"x" * pad

    def draw(self, epoch: int) -> List[Arrival]:
        """One epoch's arrivals, sorted by offset by construction."""
        rng = self._rng
        out: List[Arrival] = []
        t = 0.0
        for i in range(self._requests):
            t += float(rng.exponential(self._mean_gap_ms))
            app_id, ring_id = self._apps[
                int(rng.integers(len(self._apps)))
            ]
            key = self._keys[
                int(rng.choice(len(self._keys), p=self._weights))
            ]
            client = None
            if self._sites:
                client = self._sites[int(rng.integers(len(self._sites)))]
            if float(rng.random()) < self._read_fraction:
                out.append(Arrival(
                    offset_ms=t, kind="get", app_id=app_id,
                    ring_id=ring_id, key=key, value=None, client=client,
                ))
            else:
                out.append(Arrival(
                    offset_ms=t, kind="put", app_id=app_id,
                    ring_id=ring_id, key=key,
                    value=self._value(epoch, i), client=client,
                ))
        return out
