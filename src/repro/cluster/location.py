"""Geographic location model and the 6-bit diversity metric.

The paper (§II-B) identifies every server by a six-level geographic path:
continent, country, datacenter, room, rack and server, with leftmost
significance.  The *similarity* of two servers is a 6-bit number whose
bits, from the most significant down, record whether the corresponding
location parts are equal.  *Diversity* is the bitwise NOT of similarity
restricted to 6 bits, e.g. two servers sharing continent, country and
datacenter but sitting in different rooms have similarity ``111000`` and
diversity ``000111`` = 7.

Because the hierarchy is strict (a "room 0" in two different datacenters
is not the same room), similarity is *prefix* based: once one level
differs, every deeper level is counted as different as well.  This
matches the paper's worked example and keeps the metric an ultrametric-
like distance on the location tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

#: Names of the six location levels, most significant first.
LEVELS: Tuple[str, ...] = (
    "continent",
    "country",
    "datacenter",
    "room",
    "rack",
    "server",
)

#: Number of location levels / bits in the diversity value.
NUM_LEVELS: int = len(LEVELS)

#: Mask of all-ones over the six similarity bits.
FULL_MASK: int = (1 << NUM_LEVELS) - 1

#: Diversity between two servers that share nothing (different continents).
MAX_DIVERSITY: int = FULL_MASK

#: Diversity between two replicas placed in different countries of the
#: same continent — the smallest pairwise diversity that still survives a
#: country-wide outage.  Used as the default unit for availability targets.
CROSS_COUNTRY_DIVERSITY: int = FULL_MASK >> 1


class LocationError(ValueError):
    """Raised for malformed location paths."""


@dataclass(frozen=True, order=True)
class Location:
    """A full six-level location path for one server.

    Components are small integers naming the entity *within its parent*
    (country 2 means "the third country of that continent").  Equality of
    a level is therefore only meaningful when all shallower levels match,
    which is exactly what :func:`similarity` implements.
    """

    continent: int
    country: int
    datacenter: int
    room: int
    rack: int
    server: int

    def __post_init__(self) -> None:
        for name in LEVELS:
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool):
                raise LocationError(f"{name} must be an int, got {value!r}")
            if value < 0:
                raise LocationError(f"{name} must be >= 0, got {value}")

    def parts(self) -> Tuple[int, ...]:
        """Return the path as a tuple, most significant level first."""
        return (
            self.continent,
            self.country,
            self.datacenter,
            self.room,
            self.rack,
            self.server,
        )

    def prefix(self, depth: int) -> Tuple[int, ...]:
        """Return the first ``depth`` levels of the path.

        ``depth`` 0 is the empty prefix; ``depth`` 6 is the whole path.
        """
        if not 0 <= depth <= NUM_LEVELS:
            raise LocationError(f"depth must be in [0, {NUM_LEVELS}], got {depth}")
        return self.parts()[:depth]

    def same_prefix(self, other: "Location", depth: int) -> bool:
        """True when both locations agree on the first ``depth`` levels."""
        return self.prefix(depth) == other.prefix(depth)

    def ancestors(self) -> Iterator[Tuple[int, ...]]:
        """Yield every non-empty prefix, shallowest first."""
        for depth in range(1, NUM_LEVELS + 1):
            yield self.prefix(depth)

    def __str__(self) -> str:
        return "/".join(
            f"{name[:2]}{value}" for name, value in zip(LEVELS, self.parts())
        )

    @classmethod
    def from_parts(cls, parts: Tuple[int, ...]) -> "Location":
        """Build a location from a 6-tuple (most significant first)."""
        if len(parts) != NUM_LEVELS:
            raise LocationError(
                f"need {NUM_LEVELS} parts, got {len(parts)}: {parts!r}"
            )
        return cls(*parts)


def shared_depth(a: Location, b: Location) -> int:
    """Number of leading location levels on which ``a`` and ``b`` agree."""
    depth = 0
    for pa, pb in zip(a.parts(), b.parts()):
        if pa != pb:
            break
        depth += 1
    return depth


def similarity(a: Location, b: Location) -> int:
    """6-bit prefix similarity of two locations (paper §II-B).

    Bit 5 (MSB) is the continent, bit 0 the server.  A bit is 1 only when
    the corresponding level *and every shallower level* match.
    """
    depth = shared_depth(a, b)
    if depth == 0:
        return 0
    # ``depth`` leading ones followed by (NUM_LEVELS - depth) zeros.
    return ((1 << depth) - 1) << (NUM_LEVELS - depth)


def diversity(a: Location, b: Location) -> int:
    """Geographic diversity: bitwise NOT of :func:`similarity` over 6 bits.

    Ranges from 0 (identical server) to :data:`MAX_DIVERSITY` (different
    continents).  Symmetric, and ``diversity(a, a) == 0``.
    """
    return FULL_MASK ^ similarity(a, b)


def diversity_from_depth(depth: int) -> int:
    """Diversity value implied by a shared-prefix depth.

    ``depth=6`` (same server) gives 0; ``depth=0`` gives 63.  Useful for
    reasoning about thresholds without concrete locations.
    """
    if not 0 <= depth <= NUM_LEVELS:
        raise LocationError(f"depth must be in [0, {NUM_LEVELS}], got {depth}")
    if depth == 0:
        return FULL_MASK
    return FULL_MASK ^ (((1 << depth) - 1) << (NUM_LEVELS - depth))
