"""The data cloud: a collection of servers with cached pairwise diversity.

Builds the paper's evaluation layout (§III-A): 200 servers over 10
countries — 2 datacenters per country, 1 room per datacenter, 2 racks per
room, 5 servers per rack — and keeps an integer diversity matrix so the
per-epoch placement scoring (eq. 3) can be vectorised with numpy.

The cloud is elastic: servers can be added (resource upgrade) or removed
(failure) at runtime, as the Fig. 3 experiment requires.  Server ids are
never reused so historical metrics stay unambiguous.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.confidence import ConfidenceModel, uniform_confidence
from repro.cluster.location import (
    Location,
    NUM_LEVELS,
    diversity,
    diversity_from_depth,
)
from repro.cluster.server import GB, Server, make_server


class TopologyError(ValueError):
    """Raised for invalid topology layouts or unknown servers."""


@dataclass(frozen=True)
class CloudLayout:
    """Shape of a regularly-structured cloud, paper defaults included.

    ``countries_per_continent`` spreads the countries over continents so
    that both cross-country (31) and cross-continent (63) diversities
    occur; the paper speaks only of "10 countries", so the continent
    grouping is a free parameter (default: 2 countries per continent,
    i.e. 5 continents).
    """

    countries: int = 10
    countries_per_continent: int = 2
    datacenters_per_country: int = 2
    rooms_per_datacenter: int = 1
    racks_per_room: int = 2
    servers_per_rack: int = 5

    def __post_init__(self) -> None:
        for name in (
            "countries",
            "countries_per_continent",
            "datacenters_per_country",
            "rooms_per_datacenter",
            "racks_per_room",
            "servers_per_rack",
        ):
            if getattr(self, name) <= 0:
                raise TopologyError(f"{name} must be > 0")

    @property
    def total_servers(self) -> int:
        return (
            self.countries
            * self.datacenters_per_country
            * self.rooms_per_datacenter
            * self.racks_per_room
            * self.servers_per_rack
        )

    def locations(self) -> Iterator[Location]:
        """Yield every server location of the layout, in a stable order."""
        for country in range(self.countries):
            continent = country // self.countries_per_continent
            country_in_continent = country % self.countries_per_continent
            for dc in range(self.datacenters_per_country):
                for room in range(self.rooms_per_datacenter):
                    for rack in range(self.racks_per_room):
                        for srv in range(self.servers_per_rack):
                            yield Location(
                                continent=continent,
                                country=country_in_continent,
                                datacenter=dc,
                                room=room,
                                rack=rack,
                                server=srv,
                            )


#: Paper §III-A layout: exactly 200 servers.
PAPER_LAYOUT = CloudLayout()


class Cloud:
    """Mutable set of servers plus a cached pairwise diversity matrix.

    The matrix is indexed by *dense slots*, a compaction of the live
    server ids: ``slot_of[server_id]`` gives the row/column.  Rebuilt
    incrementally on arrivals and lazily compacted on removals, it keeps
    eq. 3 candidate scoring a single numpy expression per virtual node.
    """

    def __init__(self, servers: Iterable[Server] = ()) -> None:
        self._servers: Dict[int, Server] = {}
        self._slot_of: Dict[int, int] = {}
        self._server_at_slot: List[int] = []
        self._diversity: np.ndarray = np.zeros((0, 0), dtype=np.int16)
        self._next_id = 0
        self._version = 0
        self._static_vecs: Dict[str, Tuple[int, np.ndarray]] = {}
        self.add_servers(servers)

    @property
    def version(self) -> int:
        """Monotone membership counter (bumped on add/remove).

        Slot order, the diversity matrix and per-slot caches are stable
        between two equal version reads; derived slot-ordered structures
        (cost vectors, the epoch kernel's incidence caches) key off it.
        """
        return self._version

    # -- accessors ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._servers)

    def __contains__(self, server_id: int) -> bool:
        return server_id in self._servers

    def __iter__(self) -> Iterator[Server]:
        return iter(self._servers.values())

    @property
    def server_ids(self) -> List[int]:
        """Live server ids in slot order (stable across an epoch)."""
        return list(self._server_at_slot)

    def server(self, server_id: int) -> Server:
        try:
            return self._servers[server_id]
        except KeyError:
            raise TopologyError(f"unknown server id {server_id}") from None

    def servers(self) -> List[Server]:
        return [self._servers[sid] for sid in self._server_at_slot]

    def slot(self, server_id: int) -> int:
        try:
            return self._slot_of[server_id]
        except KeyError:
            raise TopologyError(f"unknown server id {server_id}") from None

    @property
    def total_storage_capacity(self) -> int:
        return sum(s.storage_capacity for s in self._servers.values())

    @property
    def total_storage_used(self) -> int:
        return sum(s.storage_used for s in self._servers.values())

    # -- diversity ----------------------------------------------------------

    def diversity(self, a: int, b: int) -> int:
        """Pairwise diversity of two live servers, from the cache."""
        return int(self._diversity[self.slot(a), self.slot(b)])

    def diversity_row(self, server_id: int) -> np.ndarray:
        """Diversity of one server against all live servers, slot order."""
        return self._diversity[self.slot(server_id)]

    def diversity_matrix(self) -> np.ndarray:
        """The full (read-only view) pairwise diversity matrix."""
        view = self._diversity.view()
        view.flags.writeable = False
        return view

    # -- mutation -----------------------------------------------------------

    def add_server(self, server: Server) -> Server:
        """Register a server and extend the diversity matrix by one slot."""
        if server.server_id in self._servers:
            raise TopologyError(f"duplicate server id {server.server_id}")
        n = len(self._server_at_slot)
        grown = np.zeros((n + 1, n + 1), dtype=np.int16)
        grown[:n, :n] = self._diversity
        for slot, other_id in enumerate(self._server_at_slot):
            other = self._servers[other_id]
            d = diversity(server.location, other.location)
            grown[n, slot] = d
            grown[slot, n] = d
        self._diversity = grown
        self._servers[server.server_id] = server
        self._slot_of[server.server_id] = n
        self._server_at_slot.append(server.server_id)
        self._next_id = max(self._next_id, server.server_id + 1)
        self._version += 1
        return server

    def add_servers(self, servers: Iterable[Server]) -> None:
        """Register many servers with one vectorized matrix extension.

        Appending one server at a time re-allocates (and copies) the
        whole diversity matrix per addition — O(n³) cumulative work that
        makes 10 000+-server clouds unbuildable.  This path appends all
        new slots at once and fills their rows with a chunked numpy
        prefix-similarity computation; values and slot order are
        identical to repeated :meth:`add_server` calls.
        """
        new = list(servers)
        if not new:
            return
        seen = set(self._servers)
        for server in new:
            if server.server_id in seen:
                raise TopologyError(
                    f"duplicate server id {server.server_id}"
                )
            seen.add(server.server_id)
        n_old = len(self._server_at_slot)
        n = n_old + len(new)
        grown = np.zeros((n, n), dtype=np.int16)
        grown[:n_old, :n_old] = self._diversity
        parts = np.array(
            [
                self._servers[sid].location.parts()
                for sid in self._server_at_slot
            ]
            + [server.location.parts() for server in new],
            dtype=np.int64,
        ).reshape(n, NUM_LEVELS)
        # Canonical per-depth prefix codes: two servers share the first
        # d+1 location levels iff codes[d] matches (codes fold the
        # parent code with the level value through np.unique, so
        # equality is exact — no hashing).
        codes = np.zeros((NUM_LEVELS, n), dtype=np.int64)
        parent = np.zeros(n, dtype=np.int64)
        for d in range(NUM_LEVELS):
            pair = np.stack([parent, parts[:, d]], axis=1)
            __, parent = np.unique(pair, axis=0, return_inverse=True)
            codes[d] = parent
        # Diversity tabulated by shared-prefix depth — the same
        # function the incremental path applies pair by pair.
        lut = np.array(
            [diversity_from_depth(d) for d in range(NUM_LEVELS + 1)],
            dtype=np.int16,
        )
        # Chunk the new rows so per-level comparison temporaries stay
        # modest even for 10⁴-server clouds.
        chunk = max(1, (128 << 20) // max(n * 8, 1))
        for start in range(n_old, n, chunk):
            stop = min(start + chunk, n)
            depth = np.zeros((stop - start, n), dtype=np.int8)
            for d in range(NUM_LEVELS):
                depth += codes[d, start:stop, None] == codes[d, None, :]
            grown[start:stop, :] = lut[depth]
        # Mirror the new rows into the new columns in one pass (writing
        # per-chunk column stripes is a strided-scatter hot spot).
        grown[:n_old, n_old:] = grown[n_old:, :n_old].T
        self._diversity = grown
        for offset, server in enumerate(new):
            slot = n_old + offset
            self._servers[server.server_id] = server
            self._slot_of[server.server_id] = slot
            self._server_at_slot.append(server.server_id)
            self._next_id = max(self._next_id, server.server_id + 1)
        self._version += 1

    def spawn_server(self, location: Location, **kwargs) -> Server:
        """Create and register a server with the next free id."""
        server = make_server(self._next_id, location, **kwargs)
        return self.add_server(server)

    def remove_server(self, server_id: int) -> Server:
        """Remove a server (crash or decommission) and compact the matrix."""
        server = self.server(server_id)
        gone = self._slot_of.pop(server_id)
        del self._servers[server_id]
        self._server_at_slot.pop(gone)
        keep = [s for s in range(self._diversity.shape[0]) if s != gone]
        self._diversity = self._diversity[np.ix_(keep, keep)]
        for slot, sid in enumerate(self._server_at_slot):
            self._slot_of[sid] = slot
        server.fail()
        self._version += 1
        return server

    def begin_epoch(self) -> None:
        """Reset per-epoch counters on every server."""
        for server in self._servers.values():
            server.begin_epoch()

    # -- vector views (for placement scoring) --------------------------------

    def rent_vector(self, prices: Dict[int, float]) -> np.ndarray:
        """Per-slot vector of virtual rent prices from a price mapping."""
        return np.array(
            [prices[sid] for sid in self._server_at_slot], dtype=np.float64
        )

    def confidence_vector(self) -> np.ndarray:
        return np.array(
            [self._servers[sid].confidence for sid in self._server_at_slot],
            dtype=np.float64,
        )

    def capacity_vector(self) -> np.ndarray:
        """Per-slot storage capacities (read-only; cached per version).

        Capacity is immutable per server, so the vector only rebuilds
        when cloud membership changes — epoch-hot consumers (the eq. 3
        scorer is rebuilt every epoch) share one array instead of
        paying an O(S) Python pass each.
        """
        cached = self._static_vecs.get("capacity")
        if cached is None or cached[0] != self._version:
            arr = np.array(
                [
                    self._servers[sid].storage_capacity
                    for sid in self._server_at_slot
                ],
                dtype=np.int64,
            )
            self._static_vecs["capacity"] = (self._version, arr)
            return arr
        return cached[1]

    def monthly_rent_vector(self) -> np.ndarray:
        """Per-slot real monthly rents (read-only; cached per version)."""
        cached = self._static_vecs.get("rent")
        if cached is None or cached[0] != self._version:
            arr = np.array(
                [
                    self._servers[sid].monthly_rent
                    for sid in self._server_at_slot
                ],
                dtype=np.float64,
            )
            self._static_vecs["rent"] = (self._version, arr)
            return arr
        return cached[1]

    def alive_vector(self) -> np.ndarray:
        """Per-slot liveness flags (fresh each call — alive is mutable
        outside membership changes, e.g. transient failures)."""
        n = len(self._server_at_slot)
        return np.fromiter(
            (
                self._servers[sid].alive
                for sid in self._server_at_slot
            ),
            dtype=bool, count=n,
        )

    def storage_available_vector(self) -> np.ndarray:
        return np.array(
            [
                self._servers[sid].storage_available
                for sid in self._server_at_slot
            ],
            dtype=np.int64,
        )


def build_cloud(layout: CloudLayout = PAPER_LAYOUT, *,
                storage_capacity: int = 50 * GB,
                query_capacity: int = 1_000_000,
                expensive_fraction: float = 0.3,
                cheap_rent: float = 100.0,
                expensive_rent: float = 125.0,
                confidence: Optional[ConfidenceModel] = None,
                rng: Optional[np.random.Generator] = None) -> Cloud:
    """Build a cloud per the paper's evaluation setup.

    70 % of servers cost 100$/month and 30 % cost 125$ (§III-A); which
    servers are expensive is chosen uniformly at random from ``rng`` (or
    deterministically — the last 30 % in layout order — when no rng is
    given, which keeps unit tests reproducible without seeding).
    """
    if not 0.0 <= expensive_fraction <= 1.0:
        raise TopologyError(
            f"expensive_fraction must be in [0, 1], got {expensive_fraction}"
        )
    model = confidence if confidence is not None else uniform_confidence()
    locations = list(layout.locations())
    n = len(locations)
    n_expensive = round(n * expensive_fraction)
    if rng is None:
        expensive_ids = set(range(n - n_expensive, n))
    else:
        expensive_ids = set(
            rng.choice(n, size=n_expensive, replace=False).tolist()
        )
    return Cloud(
        make_server(
            server_id,
            location,
            monthly_rent=(
                expensive_rent if server_id in expensive_ids else cheap_rent
            ),
            storage_capacity=storage_capacity,
            query_capacity=query_capacity,
            confidence=model.for_server(server_id, location),
        )
        for server_id, location in enumerate(locations)
    )


def fresh_locations(layout: CloudLayout, existing: Sequence[Location],
                    count: int) -> List[Location]:
    """Pick ``count`` locations for new servers, reusing the layout's racks.

    New servers join existing racks round-robin (extra slots in a rack),
    mimicking capacity upgrades in place rather than new datacenters.
    """
    if count < 0:
        raise TopologyError(f"count must be >= 0, got {count}")
    taken = set(existing)
    racks: List[Tuple[int, ...]] = []
    seen = set()
    for loc in layout.locations():
        rack_key = loc.prefix(5)
        if rack_key not in seen:
            seen.add(rack_key)
            racks.append(rack_key)
    out: List[Location] = []
    next_index: Dict[Tuple[int, ...], int] = {}
    rack_cycle = 0
    while len(out) < count:
        rack_key = racks[rack_cycle % len(racks)]
        rack_cycle += 1
        idx = next_index.get(rack_key, layout.servers_per_rack)
        candidate = Location.from_parts(rack_key + (idx,))
        while candidate in taken:
            idx += 1
            candidate = Location.from_parts(rack_key + (idx,))
        next_index[rack_key] = idx + 1
        taken.add(candidate)
        out.append(candidate)
    return out
