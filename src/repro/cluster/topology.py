"""The data cloud: a collection of servers with cached pairwise diversity.

Builds the paper's evaluation layout (§III-A): 200 servers over 10
countries — 2 datacenters per country, 1 room per datacenter, 2 racks per
room, 5 servers per rack — and keeps an integer diversity matrix so the
per-epoch placement scoring (eq. 3) can be vectorised with numpy.

The cloud is elastic: servers can be added (resource upgrade) or removed
(failure) at runtime, as the Fig. 3 experiment requires.  Server ids are
never reused so historical metrics stay unambiguous.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.confidence import ConfidenceModel, uniform_confidence
from repro.cluster.location import (
    Location,
    NUM_LEVELS,
    diversity,
    diversity_from_depth,
)
from repro.cluster.server import GB, Server, ServerTable, make_server


class TopologyError(ValueError):
    """Raised for invalid topology layouts or unknown servers."""


@dataclass(frozen=True)
class CloudLayout:
    """Shape of a regularly-structured cloud, paper defaults included.

    ``countries_per_continent`` spreads the countries over continents so
    that both cross-country (31) and cross-continent (63) diversities
    occur; the paper speaks only of "10 countries", so the continent
    grouping is a free parameter (default: 2 countries per continent,
    i.e. 5 continents).
    """

    countries: int = 10
    countries_per_continent: int = 2
    datacenters_per_country: int = 2
    rooms_per_datacenter: int = 1
    racks_per_room: int = 2
    servers_per_rack: int = 5

    def __post_init__(self) -> None:
        for name in (
            "countries",
            "countries_per_continent",
            "datacenters_per_country",
            "rooms_per_datacenter",
            "racks_per_room",
            "servers_per_rack",
        ):
            if getattr(self, name) <= 0:
                raise TopologyError(f"{name} must be > 0")

    @property
    def total_servers(self) -> int:
        return (
            self.countries
            * self.datacenters_per_country
            * self.rooms_per_datacenter
            * self.racks_per_room
            * self.servers_per_rack
        )

    def locations(self) -> Iterator[Location]:
        """Yield every server location of the layout, in a stable order."""
        for country in range(self.countries):
            continent = country // self.countries_per_continent
            country_in_continent = country % self.countries_per_continent
            for dc in range(self.datacenters_per_country):
                for room in range(self.rooms_per_datacenter):
                    for rack in range(self.racks_per_room):
                        for srv in range(self.servers_per_rack):
                            yield Location(
                                continent=continent,
                                country=country_in_continent,
                                datacenter=dc,
                                room=room,
                                rack=rack,
                                server=srv,
                            )


#: Paper §III-A layout: exactly 200 servers.
PAPER_LAYOUT = CloudLayout()


class Cloud:
    """Mutable set of servers plus a cached pairwise diversity matrix.

    The matrix is indexed by *dense slots*, a compaction of the live
    server ids: ``slot_of[server_id]`` gives the row/column.  Rebuilt
    incrementally on arrivals and lazily compacted on removals, it keeps
    eq. 3 candidate scoring a single numpy expression per virtual node.

    Server state itself is columnar: registration adopts each server's
    row into the cloud-owned :class:`~repro.cluster.server.ServerTable`
    (row ≡ slot), so per-epoch resets, the eq. 1 pricing inputs and
    every per-slot vector view below are single array operations over
    the table's columns instead of O(S) Python loops over objects.
    """

    def __init__(self, servers: Iterable[Server] = ()) -> None:
        self._servers: Dict[int, Server] = {}
        self._slot_of: Dict[int, int] = {}
        self._server_at_slot: List[int] = []
        self._table = ServerTable()
        self._diversity: np.ndarray = np.zeros((0, 0), dtype=np.int16)
        self._next_id = 0
        self._version = 0
        self._slot_lookup: Optional[Tuple[int, np.ndarray]] = None
        self.add_servers(servers)

    @property
    def version(self) -> int:
        """Monotone membership counter (bumped on add/remove).

        Slot order, the diversity matrix and per-slot caches are stable
        between two equal version reads; derived slot-ordered structures
        (cost vectors, the epoch kernel's incidence caches) key off it.
        """
        return self._version

    # -- accessors ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._servers)

    def __contains__(self, server_id: int) -> bool:
        return server_id in self._servers

    def __iter__(self) -> Iterator[Server]:
        return iter(self._servers.values())

    @property
    def server_ids(self) -> List[int]:
        """Live server ids in slot order (stable across an epoch)."""
        return list(self._server_at_slot)

    def server(self, server_id: int) -> Server:
        try:
            return self._servers[server_id]
        except KeyError:
            raise TopologyError(f"unknown server id {server_id}") from None

    def servers(self) -> List[Server]:
        return [self._servers[sid] for sid in self._server_at_slot]

    def slot(self, server_id: int) -> int:
        try:
            return self._slot_of[server_id]
        except KeyError:
            raise TopologyError(f"unknown server id {server_id}") from None

    @property
    def table(self) -> ServerTable:
        """The cloud-owned server column store (row ≡ slot).

        Treat the columns as read-only — all mutation flows through the
        :class:`Server` row views so capacity invariants keep holding.
        """
        return self._table

    @property
    def total_storage_capacity(self) -> int:
        n = len(self._table)
        return int(self._table.storage_capacity[:n].sum())

    @property
    def total_storage_used(self) -> int:
        n = len(self._table)
        return int(self._table.storage_used[:n].sum())

    # -- diversity ----------------------------------------------------------

    def diversity(self, a: int, b: int) -> int:
        """Pairwise diversity of two live servers, from the cache."""
        return int(self._diversity[self.slot(a), self.slot(b)])

    def diversity_row(self, server_id: int) -> np.ndarray:
        """Diversity of one server against all live servers, slot order."""
        return self._diversity[self.slot(server_id)]

    def diversity_matrix(self) -> np.ndarray:
        """The full (read-only view) pairwise diversity matrix."""
        view = self._diversity.view()
        view.flags.writeable = False
        return view

    # -- mutation -----------------------------------------------------------

    def add_server(self, server: Server) -> Server:
        """Register a server and extend the diversity matrix by one slot."""
        if server.server_id in self._servers:
            raise TopologyError(f"duplicate server id {server.server_id}")
        n = len(self._server_at_slot)
        grown = np.zeros((n + 1, n + 1), dtype=np.int16)
        grown[:n, :n] = self._diversity
        for slot, other_id in enumerate(self._server_at_slot):
            other = self._servers[other_id]
            d = diversity(server.location, other.location)
            grown[n, slot] = d
            grown[slot, n] = d
        self._diversity = grown
        self._adopt(server, n)
        self._version += 1
        return server

    def _adopt(self, server: Server, slot: int) -> None:
        """Copy a server's row into the cloud table at ``slot``."""
        row = self._table.adopt_row(server._table, server._row)
        assert row == slot
        server._attach(self._table, row)
        self._servers[server.server_id] = server
        self._slot_of[server.server_id] = slot
        self._server_at_slot.append(server.server_id)
        self._next_id = max(self._next_id, server.server_id + 1)

    def add_servers(self, servers: Iterable[Server]) -> None:
        """Register many servers with one vectorized matrix extension.

        Appending one server at a time re-allocates (and copies) the
        whole diversity matrix per addition — O(n³) cumulative work that
        makes 10 000+-server clouds unbuildable.  This path appends all
        new slots at once and fills their rows with a chunked numpy
        prefix-similarity computation; values and slot order are
        identical to repeated :meth:`add_server` calls.
        """
        new = list(servers)
        if not new:
            return
        seen = set(self._servers)
        for server in new:
            if server.server_id in seen:
                raise TopologyError(
                    f"duplicate server id {server.server_id}"
                )
            seen.add(server.server_id)
        n_old = len(self._server_at_slot)
        n = n_old + len(new)
        grown = np.zeros((n, n), dtype=np.int16)
        grown[:n_old, :n_old] = self._diversity
        parts = np.array(
            [
                self._servers[sid].location.parts()
                for sid in self._server_at_slot
            ]
            + [server.location.parts() for server in new],
            dtype=np.int64,
        ).reshape(n, NUM_LEVELS)
        # Canonical per-depth prefix codes: two servers share the first
        # d+1 location levels iff codes[d] matches (codes fold the
        # parent code with the level value through np.unique, so
        # equality is exact — no hashing).
        codes = np.zeros((NUM_LEVELS, n), dtype=np.int64)
        parent = np.zeros(n, dtype=np.int64)
        for d in range(NUM_LEVELS):
            pair = np.stack([parent, parts[:, d]], axis=1)
            __, parent = np.unique(pair, axis=0, return_inverse=True)
            codes[d] = parent
        # Diversity tabulated by shared-prefix depth — the same
        # function the incremental path applies pair by pair.
        lut = np.array(
            [diversity_from_depth(d) for d in range(NUM_LEVELS + 1)],
            dtype=np.int16,
        )
        # Chunk the new rows so per-level comparison temporaries stay
        # modest even for 10⁴-server clouds.
        chunk = max(1, (128 << 20) // max(n * 8, 1))
        for start in range(n_old, n, chunk):
            stop = min(start + chunk, n)
            depth = np.zeros((stop - start, n), dtype=np.int8)
            for d in range(NUM_LEVELS):
                depth += codes[d, start:stop, None] == codes[d, None, :]
            grown[start:stop, :] = lut[depth]
        # Mirror the new rows into the new columns in one pass (writing
        # per-chunk column stripes is a strided-scatter hot spot).
        grown[:n_old, n_old:] = grown[n_old:, :n_old].T
        self._diversity = grown
        for offset, server in enumerate(new):
            self._adopt(server, n_old + offset)
        self._version += 1

    def spawn_server(self, location: Location, **kwargs) -> Server:
        """Create and register a server with the next free id."""
        server = make_server(self._next_id, location, **kwargs)
        return self.add_server(server)

    def spawn_servers(
        self, locations: Sequence[Location], **kwargs
    ) -> List[Server]:
        """Create and register a wave of servers with consecutive ids.

        Identical ids, slot order and diversity values to calling
        :meth:`spawn_server` per location, but the matrix extension is
        the one bulk computation of :meth:`add_servers` instead of a
        full reallocate-and-copy per arrival — a 100-server join wave
        on a 20 000-server cloud is one matrix build, not ~80 GB of
        repeated copies.
        """
        servers = [
            make_server(self._next_id + offset, location, **kwargs)
            for offset, location in enumerate(locations)
        ]
        self.add_servers(servers)
        return servers

    def remove_server(self, server_id: int) -> Server:
        """Remove a server (crash or decommission) and compact the matrix.

        The returned handle detaches onto a private single-row table,
        so callers holding it still read the server's final state; the
        cloud table's later rows shift left (row ≡ slot is preserved)
        and the surviving row views follow.
        """
        server = self.server(server_id)
        gone = self._slot_of.pop(server_id)
        del self._servers[server_id]
        self._server_at_slot.pop(gone)
        keep = [s for s in range(self._diversity.shape[0]) if s != gone]
        self._diversity = self._diversity[np.ix_(keep, keep)]
        server._detach()
        self._table.remove(gone)
        for slot, sid in enumerate(self._server_at_slot):
            self._slot_of[sid] = slot
            if slot >= gone:
                self._servers[sid]._set_row(slot)
        server.fail()
        self._version += 1
        return server

    def remove_servers(self, server_ids: Sequence[int]) -> List[Server]:
        """Remove a wave of servers with one matrix compaction.

        Equivalent to calling :meth:`remove_server` per id — survivors
        keep their relative slot order either way — but the diversity
        matrix pays a single keep-gather instead of one full-matrix
        copy per removal.
        """
        victims = [self.server(sid) for sid in server_ids]
        if len(victims) <= 1:
            return [self.remove_server(sid) for sid in server_ids]
        gone_slots = sorted(self._slot_of[v.server_id] for v in victims)
        keep = np.delete(
            np.arange(self._diversity.shape[0]), gone_slots
        )
        self._diversity = self._diversity[np.ix_(keep, keep)]
        # Table rows shift left per removal (row ≡ slot must hold for
        # the survivors' views).  Walking the doomed slots from the
        # right keeps each pending slot index valid; the per-victim
        # table shift is a small columnar move — the matrix copy above
        # was the wall.
        for server in sorted(
            victims, key=lambda v: self._slot_of[v.server_id],
            reverse=True,
        ):
            gone = self._slot_of.pop(server.server_id)
            del self._servers[server.server_id]
            self._server_at_slot.pop(gone)
            server._detach()
            self._table.remove(gone)
            server.fail()
        for slot, sid in enumerate(self._server_at_slot):
            self._slot_of[sid] = slot
            self._servers[sid]._set_row(slot)
        self._version += 1
        return victims

    def begin_epoch(self) -> None:
        """Reset per-epoch counters on every server (one column pass)."""
        self._table.begin_epoch()

    # -- vector views (for placement scoring) --------------------------------

    def rent_vector(self, prices: Dict[int, float]) -> np.ndarray:
        """Per-slot vector of virtual rent prices from a price mapping."""
        return np.array(
            [prices[sid] for sid in self._server_at_slot], dtype=np.float64
        )

    def confidence_vector(self) -> np.ndarray:
        n = len(self._table)
        return self._table.confidence[:n].copy()

    def capacity_vector(self) -> np.ndarray:
        """Per-slot storage capacities (fresh copy of the table column)."""
        n = len(self._table)
        return self._table.storage_capacity[:n].copy()

    def monthly_rent_vector(self) -> np.ndarray:
        """Per-slot real monthly rents (fresh copy of the table column)."""
        n = len(self._table)
        return self._table.monthly_rent[:n].copy()

    def query_capacity_vector(self) -> np.ndarray:
        """Per-slot query capacities (fresh copy of the table column)."""
        n = len(self._table)
        return self._table.query_capacity[:n].copy()

    def alive_vector(self) -> np.ndarray:
        """Per-slot liveness flags (fresh copy — alive is mutable
        outside membership changes, e.g. transient failures)."""
        n = len(self._table)
        return self._table.alive[:n].copy()

    def storage_available_vector(self) -> np.ndarray:
        n = len(self._table)
        table = self._table
        return table.storage_capacity[:n] - table.storage_used[:n]

    def storage_used_vector(self) -> np.ndarray:
        """Per-slot storage-used bytes (fresh copy of the table column)."""
        n = len(self._table)
        return self._table.storage_used[:n].copy()

    def queries_vector(self) -> np.ndarray:
        """Per-slot epoch query counters (fresh copy of the column)."""
        n = len(self._table)
        return self._table.queries[:n].copy()

    def budget_available_vector(self, kind: str) -> np.ndarray:
        """Remaining per-epoch bandwidth of every server, slot order.

        ``kind`` is ``"replication"`` or ``"migration"``; one array
        subtraction over the table's budget column pair.
        """
        n = len(self._table)
        table = self._table
        if kind == "replication":
            return table.rep_cap[:n] - table.rep_used[:n]
        if kind == "migration":
            return table.mig_cap[:n] - table.mig_used[:n]
        raise TopologyError(f"unknown budget kind {kind!r}")

    def record_queries_at(self, slots: np.ndarray,
                          counts: np.ndarray) -> None:
        """Charge per-slot query totals (batched settlement handoff)."""
        if np.any(counts < 0):
            raise TopologyError("query counts must be >= 0")
        n = len(self._table)
        if len(slots) and (np.min(slots) < 0 or np.max(slots) >= n):
            # Hidden capacity rows would swallow the counts silently;
            # a stale slot index must fail like an unknown server id.
            raise TopologyError(f"slot out of range for {n} servers")
        self._table.record_queries_at(slots, counts)

    def slot_lookup(self) -> np.ndarray:
        """Dense ``server_id -> slot`` map (−1 = unknown id).

        Sized ``max(id) + 2`` so callers can clip unknown ids to the
        sentinel tail.  Cached per :attr:`version`; treat as read-only.
        Assumes the engine's id discipline — ids are assigned
        sequentially and never reused, so ``max(id)`` stays O(servers
        ever added); a sparse gigantic id space would make this map
        large (the epoch kernel's own id→slot gather in `_flat_state`
        shares the same assumption).
        """
        cached = self._slot_lookup
        if cached is not None and cached[0] == self._version:
            return cached[1]
        n = len(self._server_at_slot)
        max_id = max(self._server_at_slot) if n else 0
        lookup = np.full(max_id + 2, -1, dtype=np.int64)
        if n:
            ids = np.asarray(self._server_at_slot, dtype=np.int64)
            lookup[ids] = np.arange(n)
        self._slot_lookup = (self._version, lookup)
        return lookup


def build_cloud(layout: CloudLayout = PAPER_LAYOUT, *,
                storage_capacity: int = 50 * GB,
                query_capacity: int = 1_000_000,
                expensive_fraction: float = 0.3,
                cheap_rent: float = 100.0,
                expensive_rent: float = 125.0,
                confidence: Optional[ConfidenceModel] = None,
                rng: Optional[np.random.Generator] = None) -> Cloud:
    """Build a cloud per the paper's evaluation setup.

    70 % of servers cost 100$/month and 30 % cost 125$ (§III-A); which
    servers are expensive is chosen uniformly at random from ``rng`` (or
    deterministically — the last 30 % in layout order — when no rng is
    given, which keeps unit tests reproducible without seeding).
    """
    if not 0.0 <= expensive_fraction <= 1.0:
        raise TopologyError(
            f"expensive_fraction must be in [0, 1], got {expensive_fraction}"
        )
    model = confidence if confidence is not None else uniform_confidence()
    locations = list(layout.locations())
    n = len(locations)
    n_expensive = round(n * expensive_fraction)
    if rng is None:
        expensive_ids = set(range(n - n_expensive, n))
    else:
        expensive_ids = set(
            rng.choice(n, size=n_expensive, replace=False).tolist()
        )
    return Cloud(
        make_server(
            server_id,
            location,
            monthly_rent=(
                expensive_rent if server_id in expensive_ids else cheap_rent
            ),
            storage_capacity=storage_capacity,
            query_capacity=query_capacity,
            confidence=model.for_server(server_id, location),
        )
        for server_id, location in enumerate(locations)
    )


def fresh_locations(layout: CloudLayout, existing: Sequence[Location],
                    count: int) -> List[Location]:
    """Pick ``count`` locations for new servers, reusing the layout's racks.

    New servers join existing racks round-robin (extra slots in a rack),
    mimicking capacity upgrades in place rather than new datacenters.
    """
    if count < 0:
        raise TopologyError(f"count must be >= 0, got {count}")
    taken = set(existing)
    racks: List[Tuple[int, ...]] = []
    seen = set()
    for loc in layout.locations():
        rack_key = loc.prefix(5)
        if rack_key not in seen:
            seen.add(rack_key)
            racks.append(rack_key)
    out: List[Location] = []
    next_index: Dict[Tuple[int, ...], int] = {}
    rack_cycle = 0
    while len(out) < count:
        rack_key = racks[rack_cycle % len(racks)]
        rack_cycle += 1
        idx = next_index.get(rack_key, layout.servers_per_rack)
        candidate = Location.from_parts(rack_key + (idx,))
        while candidate in taken:
            idx += 1
            candidate = Location.from_parts(rack_key + (idx,))
        next_index[rack_key] = idx + 1
        taken.add(candidate)
        out.append(candidate)
    return out
