"""Physical servers: capacities, per-epoch bandwidth budgets and usage.

A physical node (paper §I, §III-A) hosts a varying number of virtual
nodes.  It has a fixed storage capacity, a fixed bandwidth capacity for
serving queries, and *reserved* per-epoch bandwidth budgets for
replication (300 MB/epoch in the paper) and migration (100 MB/epoch).
It also carries a real monthly rent (100$ or 125$ in the evaluation)
from which the marginal usage price of eq. 1 is derived.

Storage is *array-native*: every server's mutable and static state
lives as one row of a :class:`ServerTable` — dense per-slot columns
(alive flags, confidence, rents, storage used/capacity, query counters
and both bandwidth-budget column pairs) owned by the registering
:class:`~repro.cluster.topology.Cloud` — so epoch-wide operations
(budget resets, eq. 1 pricing inputs, placement's static vectors, the
metrics rent split) are single array reads instead of O(S) Python
object loops.  :class:`Server` and :class:`BandwidthBudget` remain the
object API callers and tests use; they are thin row views, mirroring
``VNodeAgent`` over ``AgentLedger``.  A directly constructed server
owns a private single-row table with identical semantics until a cloud
adopts it.

Sizes are tracked in bytes throughout; helpers accept/display MB and GB
where that is the natural unit in the paper.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cluster.location import Location
from repro.util.columns import ColumnSet, ColumnSpec

#: One binary megabyte / gigabyte, in bytes.
MB: int = 1 << 20
GB: int = 1 << 30

#: Paper defaults (§III-A).
DEFAULT_REPLICATION_BUDGET: int = 300 * MB
DEFAULT_MIGRATION_BUDGET: int = 100 * MB


class CapacityError(ValueError):
    """Raised when a reservation would exceed a server capacity."""


class ServerTable:
    """Columnar store of every registered server's state.

    One *row* per server, indexed by the owning cloud's dense slot
    order (row ≡ slot).  Rows are appended on registration and shifted
    left in place on removal, so bound row views stay valid across
    membership changes once their row index is refreshed — the same
    compaction discipline the cloud's diversity matrix follows.

    Columns are plain numpy arrays over a doubling capacity (managed by
    the shared :class:`~repro.util.columns.ColumnSet`); consumers must
    slice with ``[:len(table)]`` (the cloud's vector views do).
    """

    __slots__ = (
        "alive", "confidence", "monthly_rent", "storage_capacity",
        "storage_used", "query_capacity", "queries",
        "rep_cap", "rep_used", "mig_cap", "mig_used", "_n", "_cols",
    )

    _SPECS = (
        ColumnSpec("alive", bool),
        ColumnSpec("confidence", np.float64),
        ColumnSpec("monthly_rent", np.float64),
        ColumnSpec("storage_capacity", np.int64),
        ColumnSpec("storage_used", np.int64),
        ColumnSpec("query_capacity", np.int64),
        ColumnSpec("queries", np.float64),
        ColumnSpec("rep_cap", np.int64),
        ColumnSpec("rep_used", np.int64),
        ColumnSpec("mig_cap", np.int64),
        ColumnSpec("mig_used", np.int64),
    )

    def __init__(self, capacity: int = 1) -> None:
        self._cols = ColumnSet(self, self._SPECS, max(capacity, 1))
        self._n = 0

    def __len__(self) -> int:
        return self._n

    def append_blank(self) -> int:
        """Claim a zeroed row; returns its index."""
        cols = self._cols
        if self._n >= cols.capacity:
            cols.grow()
        row = self._n
        # Re-zero explicitly: removal shifts leave stale tail copies.
        cols.clear_row(row)
        self._n += 1
        return row

    def adopt_row(self, src: "ServerTable", src_row: int) -> int:
        """Append a copy of one row of another table; returns the row."""
        row = self.append_blank()
        self._cols.copy_row(src._cols, src_row, row)
        return row

    def remove(self, row: int) -> None:
        """Delete a row, shifting later rows left (in place).

        The column arrays are mutated, never reallocated, so row views
        bound to this table survive — callers only re-point their row
        indices (the cloud does, for every slot after the gap).
        """
        n = self._n
        if not 0 <= row < n:
            raise CapacityError(f"no row {row} to remove (have {n})")
        self._cols.shift_remove(row, n)
        self._n = n - 1

    def begin_epoch(self) -> None:
        """Reset every row's per-epoch counters and bandwidth budgets."""
        n = self._n
        self.queries[:n] = 0.0
        self.rep_used[:n] = 0
        self.mig_used[:n] = 0

    def record_queries_at(self, rows: np.ndarray,
                          counts: np.ndarray) -> None:
        """Charge query counts to many *distinct* rows at once.

        Elementwise ``queries += count`` — the identical float64
        operation :meth:`Server.record_queries` performs per server,
        which is what keeps the batched settlement's per-server
        counters bit-identical to the scalar loop's.
        """
        self.queries[rows] += counts


class BandwidthBudget:
    """A per-epoch byte budget that transfers draw from.

    The paper reserves distinct budgets for replication and migration so
    background data movement cannot starve either activity.  ``reserve``
    is all-or-nothing: a transfer either fits in the remaining budget of
    this epoch or must wait for a later epoch.

    A budget constructed directly owns its two counters; one reached
    through a server is a view onto the server's table columns, so the
    cloud's budget vectors and the object API always agree.
    """

    __slots__ = ("_table", "_row", "_kind", "_capacity", "_used")

    def __init__(self, capacity: int, used: int = 0) -> None:
        if capacity < 0:
            raise CapacityError(f"capacity must be >= 0, got {capacity}")
        if not 0 <= used <= capacity:
            raise CapacityError(
                f"used must be in [0, {capacity}], got {used}"
            )
        self._table: Optional[ServerTable] = None
        self._row = -1
        self._kind = ""
        self._capacity = capacity
        self._used = used

    # -- row-view plumbing -------------------------------------------------

    def _cols(self):
        table = self._table
        if self._kind == "replication":
            return table.rep_cap, table.rep_used
        return table.mig_cap, table.mig_used

    def _bind(self, table: ServerTable, row: int, kind: str) -> None:
        """Write current values into the table columns and view them."""
        if self._table is not None and (
            self._table is not table
            or self._row != row
            or self._kind != kind
        ):
            # One budget object cannot view two rows: silently
            # re-pointing would desynchronize the first server's object
            # API from its columns.  Assign each server its own budget.
            raise CapacityError(
                "budget is already bound to another server's columns"
            )
        capacity, used = self.capacity, self.used
        self._table, self._row, self._kind = table, row, kind
        cap_col, used_col = self._cols()
        cap_col[row] = capacity
        used_col[row] = used

    def _attach(self, table: ServerTable, row: int, kind: str) -> None:
        """View an existing row without writing (values already there)."""
        self._table, self._row, self._kind = table, row, kind

    def _set_row(self, row: int) -> None:
        self._row = row

    # -- budget API --------------------------------------------------------

    @property
    def capacity(self) -> int:
        if self._table is None:
            return self._capacity
        return int(self._cols()[0][self._row])

    @property
    def used(self) -> int:
        if self._table is None:
            return self._used
        return int(self._cols()[1][self._row])

    @property
    def available(self) -> int:
        return self.capacity - self.used

    def _set_used(self, value: int) -> None:
        if self._table is None:
            self._used = value
        else:
            self._cols()[1][self._row] = value

    def can_reserve(self, nbytes: int) -> bool:
        return 0 <= nbytes <= self.available

    def reserve(self, nbytes: int) -> None:
        """Consume ``nbytes`` of this epoch's budget, or raise."""
        if nbytes < 0:
            raise CapacityError(f"cannot reserve negative bytes: {nbytes}")
        if nbytes > self.available:
            raise CapacityError(
                f"budget exhausted: need {nbytes}, have {self.available}"
            )
        self._set_used(self.used + nbytes)

    def release(self, nbytes: int) -> None:
        """Give back a failed reservation within the same epoch."""
        if not 0 <= nbytes <= self.used:
            raise CapacityError(
                f"cannot release {nbytes} bytes, only {self.used} used"
            )
        self._set_used(self.used - nbytes)

    def reset(self) -> None:
        """Start a new epoch with a full budget."""
        self._set_used(0)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BandwidthBudget):
            return NotImplemented
        return (self.capacity, self.used) == (other.capacity, other.used)

    def __repr__(self) -> str:
        return f"BandwidthBudget(capacity={self.capacity}, used={self.used})"


class Server:
    """One physical node of the data cloud — a :class:`ServerTable` row view.

    Attributes mirror the paper's model: a geographic :class:`Location`,
    a subjective ``confidence``, a ``monthly_rent`` in real currency, a
    raw storage capacity, a query-serving capacity (queries/epoch the
    access link sustains) and separate replication/migration budgets.

    The mutable state (``storage_used``, ``queries_this_epoch``, the
    budget counters) is maintained by the store and the simulator; the
    server object itself only enforces capacity invariants.  A directly
    constructed server owns a private single-row table;
    ``Cloud.add_server`` adopts the row into the cloud's shared table
    (and removal detaches it back), so the same handle stays valid
    across registration.
    """

    __slots__ = (
        "server_id", "location", "_table", "_row",
        "_replication_budget", "_migration_budget",
    )

    def __init__(self, server_id: int, location: Location,
                 monthly_rent: float, storage_capacity: int,
                 query_capacity: int = 1_000_000,
                 confidence: float = 1.0,
                 replication_budget: Optional[BandwidthBudget] = None,
                 migration_budget: Optional[BandwidthBudget] = None,
                 storage_used: int = 0,
                 queries_this_epoch: float = 0.0,
                 alive: bool = True) -> None:
        if server_id < 0:
            raise ValueError(f"server_id must be >= 0, got {server_id}")
        if monthly_rent < 0:
            raise ValueError(f"monthly_rent must be >= 0, got {monthly_rent}")
        if storage_capacity <= 0:
            raise CapacityError(
                f"storage_capacity must be > 0, got {storage_capacity}"
            )
        if query_capacity <= 0:
            raise CapacityError(
                f"query_capacity must be > 0, got {query_capacity}"
            )
        if not 0.0 <= confidence <= 1.0:
            raise ValueError(
                f"confidence must be in [0, 1], got {confidence}"
            )
        if not 0 <= storage_used <= storage_capacity:
            raise CapacityError(
                f"storage_used out of range: {storage_used}"
            )
        self.server_id = server_id
        self.location = location
        table = ServerTable(1)
        row = table.append_blank()
        table.alive[row] = alive
        table.confidence[row] = confidence
        table.monthly_rent[row] = monthly_rent
        table.storage_capacity[row] = storage_capacity
        table.storage_used[row] = storage_used
        table.query_capacity[row] = query_capacity
        table.queries[row] = queries_this_epoch
        self._table = table
        self._row = row
        if replication_budget is None:
            replication_budget = BandwidthBudget(DEFAULT_REPLICATION_BUDGET)
        if migration_budget is None:
            migration_budget = BandwidthBudget(DEFAULT_MIGRATION_BUDGET)
        replication_budget._bind(table, row, "replication")
        migration_budget._bind(table, row, "migration")
        self._replication_budget = replication_budget
        self._migration_budget = migration_budget

    # -- row-view plumbing -------------------------------------------------

    def _attach(self, table: ServerTable, row: int) -> None:
        """Point the view at an adopted row (values already copied)."""
        self._table = table
        self._row = row
        self._replication_budget._attach(table, row, "replication")
        self._migration_budget._attach(table, row, "migration")

    def _set_row(self, row: int) -> None:
        """Follow a table compaction (the slot order shifted)."""
        self._row = row
        self._replication_budget._set_row(row)
        self._migration_budget._set_row(row)

    def _detach(self) -> None:
        """Move state onto a private table (row is being released)."""
        private = ServerTable(1)
        row = private.adopt_row(self._table, self._row)
        self._attach(private, row)

    # -- column accessors --------------------------------------------------

    @property
    def monthly_rent(self) -> float:
        return float(self._table.monthly_rent[self._row])

    @property
    def storage_capacity(self) -> int:
        return int(self._table.storage_capacity[self._row])

    @property
    def query_capacity(self) -> int:
        return int(self._table.query_capacity[self._row])

    @property
    def confidence(self) -> float:
        return float(self._table.confidence[self._row])

    @property
    def storage_used(self) -> int:
        return int(self._table.storage_used[self._row])

    @property
    def queries_this_epoch(self) -> float:
        return float(self._table.queries[self._row])

    @property
    def alive(self) -> bool:
        return bool(self._table.alive[self._row])

    @property
    def replication_budget(self) -> BandwidthBudget:
        return self._replication_budget

    @replication_budget.setter
    def replication_budget(self, budget: BandwidthBudget) -> None:
        budget._bind(self._table, self._row, "replication")
        self._replication_budget = budget

    @property
    def migration_budget(self) -> BandwidthBudget:
        return self._migration_budget

    @migration_budget.setter
    def migration_budget(self, budget: BandwidthBudget) -> None:
        budget._bind(self._table, self._row, "migration")
        self._migration_budget = budget

    # -- storage ----------------------------------------------------------

    @property
    def storage_available(self) -> int:
        return self.storage_capacity - self.storage_used

    @property
    def storage_usage(self) -> float:
        """Fraction of storage in use, the eq. 1 ``storage_usage`` term."""
        return self.storage_used / self.storage_capacity

    def can_store(self, nbytes: int) -> bool:
        return self.alive and 0 <= nbytes <= self.storage_available

    def allocate_storage(self, nbytes: int) -> None:
        """Account for ``nbytes`` of new replica data, or raise."""
        if nbytes < 0:
            raise CapacityError(f"cannot allocate negative bytes: {nbytes}")
        if not self.alive:
            raise CapacityError(f"server {self.server_id} is down")
        if nbytes > self.storage_available:
            raise CapacityError(
                f"server {self.server_id} full: need {nbytes}, "
                f"have {self.storage_available}"
            )
        self._table.storage_used[self._row] += nbytes

    def free_storage(self, nbytes: int) -> None:
        """Account for replica data removed from this server."""
        if not 0 <= nbytes <= self.storage_used:
            raise CapacityError(
                f"cannot free {nbytes} bytes, only {self.storage_used} used"
            )
        self._table.storage_used[self._row] -= nbytes

    # -- queries -----------------------------------------------------------

    @property
    def query_load(self) -> float:
        """Fraction of query capacity used, the eq. 1 ``query_load`` term.

        May exceed 1.0 under overload; eq. 1 then prices the server high
        enough that unpopular virtual nodes move away.
        """
        return self.queries_this_epoch / self.query_capacity

    def record_queries(self, count: float) -> None:
        """Charge queries to this server; fractional shares are allowed.

        The simulator routes a partition's epoch queries to its replicas
        as (possibly fractional) shares rather than individual query
        objects, so the counter is a float.
        """
        if count < 0:
            raise ValueError(f"query count must be >= 0, got {count}")
        self._table.queries[self._row] += count

    # -- epoch lifecycle ----------------------------------------------------

    def begin_epoch(self) -> None:
        """Reset per-epoch counters and bandwidth budgets."""
        table, row = self._table, self._row
        table.queries[row] = 0.0
        table.rep_used[row] = 0
        table.mig_used[row] = 0

    def fail(self) -> None:
        """Mark the server as failed; its replicas are lost instantly."""
        self._table.alive[self._row] = False

    def restore(self) -> None:
        """Bring a failed server back, empty."""
        table, row = self._table, self._row
        table.alive[row] = True
        table.storage_used[row] = 0
        table.queries[row] = 0.0
        table.rep_used[row] = 0
        table.mig_used[row] = 0

    def __str__(self) -> str:
        state = "up" if self.alive else "DOWN"
        return (
            f"Server#{self.server_id}[{self.location}] "
            f"{state} rent={self.monthly_rent}$ "
            f"store={self.storage_used}/{self.storage_capacity}"
        )


def make_server(server_id: int, location: Location, *,
                monthly_rent: float = 100.0,
                storage_capacity: int = 50 * GB,
                query_capacity: int = 1_000_000,
                confidence: float = 1.0,
                replication_budget: Optional[int] = None,
                migration_budget: Optional[int] = None) -> Server:
    """Convenience constructor with the paper's bandwidth defaults."""
    return Server(
        server_id=server_id,
        location=location,
        monthly_rent=monthly_rent,
        storage_capacity=storage_capacity,
        query_capacity=query_capacity,
        confidence=confidence,
        replication_budget=BandwidthBudget(
            DEFAULT_REPLICATION_BUDGET if replication_budget is None
            else replication_budget
        ),
        migration_budget=BandwidthBudget(
            DEFAULT_MIGRATION_BUDGET if migration_budget is None
            else migration_budget
        ),
    )
