"""Physical servers: capacities, per-epoch bandwidth budgets and usage.

A physical node (paper §I, §III-A) hosts a varying number of virtual
nodes.  It has a fixed storage capacity, a fixed bandwidth capacity for
serving queries, and *reserved* per-epoch bandwidth budgets for
replication (300 MB/epoch in the paper) and migration (100 MB/epoch).
It also carries a real monthly rent (100$ or 125$ in the evaluation)
from which the marginal usage price of eq. 1 is derived.

Sizes are tracked in bytes throughout; helpers accept/display MB and GB
where that is the natural unit in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cluster.location import Location

#: One binary megabyte / gigabyte, in bytes.
MB: int = 1 << 20
GB: int = 1 << 30

#: Paper defaults (§III-A).
DEFAULT_REPLICATION_BUDGET: int = 300 * MB
DEFAULT_MIGRATION_BUDGET: int = 100 * MB


class CapacityError(ValueError):
    """Raised when a reservation would exceed a server capacity."""


@dataclass
class BandwidthBudget:
    """A per-epoch byte budget that transfers draw from.

    The paper reserves distinct budgets for replication and migration so
    background data movement cannot starve either activity.  ``reserve``
    is all-or-nothing: a transfer either fits in the remaining budget of
    this epoch or must wait for a later epoch.
    """

    capacity: int
    used: int = 0

    def __post_init__(self) -> None:
        if self.capacity < 0:
            raise CapacityError(f"capacity must be >= 0, got {self.capacity}")
        if not 0 <= self.used <= self.capacity:
            raise CapacityError(
                f"used must be in [0, {self.capacity}], got {self.used}"
            )

    @property
    def available(self) -> int:
        return self.capacity - self.used

    def can_reserve(self, nbytes: int) -> bool:
        return 0 <= nbytes <= self.available

    def reserve(self, nbytes: int) -> None:
        """Consume ``nbytes`` of this epoch's budget, or raise."""
        if nbytes < 0:
            raise CapacityError(f"cannot reserve negative bytes: {nbytes}")
        if nbytes > self.available:
            raise CapacityError(
                f"budget exhausted: need {nbytes}, have {self.available}"
            )
        self.used += nbytes

    def release(self, nbytes: int) -> None:
        """Give back a failed reservation within the same epoch."""
        if not 0 <= nbytes <= self.used:
            raise CapacityError(
                f"cannot release {nbytes} bytes, only {self.used} used"
            )
        self.used -= nbytes

    def reset(self) -> None:
        """Start a new epoch with a full budget."""
        self.used = 0


@dataclass
class Server:
    """One physical node of the data cloud.

    Attributes mirror the paper's model: a geographic :class:`Location`,
    a subjective ``confidence``, a ``monthly_rent`` in real currency, a
    raw storage capacity, a query-serving capacity (queries/epoch the
    access link sustains) and separate replication/migration budgets.

    The mutable fields (``storage_used``, ``queries_this_epoch``) are
    maintained by the store and the simulator; the server object itself
    only enforces capacity invariants.
    """

    server_id: int
    location: Location
    monthly_rent: float
    storage_capacity: int
    query_capacity: int = 1_000_000
    confidence: float = 1.0
    replication_budget: BandwidthBudget = field(
        default_factory=lambda: BandwidthBudget(DEFAULT_REPLICATION_BUDGET)
    )
    migration_budget: BandwidthBudget = field(
        default_factory=lambda: BandwidthBudget(DEFAULT_MIGRATION_BUDGET)
    )
    storage_used: int = 0
    queries_this_epoch: float = 0.0
    alive: bool = True

    def __post_init__(self) -> None:
        if self.server_id < 0:
            raise ValueError(f"server_id must be >= 0, got {self.server_id}")
        if self.monthly_rent < 0:
            raise ValueError(f"monthly_rent must be >= 0, got {self.monthly_rent}")
        if self.storage_capacity <= 0:
            raise CapacityError(
                f"storage_capacity must be > 0, got {self.storage_capacity}"
            )
        if self.query_capacity <= 0:
            raise CapacityError(
                f"query_capacity must be > 0, got {self.query_capacity}"
            )
        if not 0.0 <= self.confidence <= 1.0:
            raise ValueError(
                f"confidence must be in [0, 1], got {self.confidence}"
            )
        if not 0 <= self.storage_used <= self.storage_capacity:
            raise CapacityError(
                f"storage_used out of range: {self.storage_used}"
            )

    # -- storage ----------------------------------------------------------

    @property
    def storage_available(self) -> int:
        return self.storage_capacity - self.storage_used

    @property
    def storage_usage(self) -> float:
        """Fraction of storage in use, the eq. 1 ``storage_usage`` term."""
        return self.storage_used / self.storage_capacity

    def can_store(self, nbytes: int) -> bool:
        return self.alive and 0 <= nbytes <= self.storage_available

    def allocate_storage(self, nbytes: int) -> None:
        """Account for ``nbytes`` of new replica data, or raise."""
        if nbytes < 0:
            raise CapacityError(f"cannot allocate negative bytes: {nbytes}")
        if not self.alive:
            raise CapacityError(f"server {self.server_id} is down")
        if nbytes > self.storage_available:
            raise CapacityError(
                f"server {self.server_id} full: need {nbytes}, "
                f"have {self.storage_available}"
            )
        self.storage_used += nbytes

    def free_storage(self, nbytes: int) -> None:
        """Account for replica data removed from this server."""
        if not 0 <= nbytes <= self.storage_used:
            raise CapacityError(
                f"cannot free {nbytes} bytes, only {self.storage_used} used"
            )
        self.storage_used -= nbytes

    # -- queries -----------------------------------------------------------

    @property
    def query_load(self) -> float:
        """Fraction of query capacity used, the eq. 1 ``query_load`` term.

        May exceed 1.0 under overload; eq. 1 then prices the server high
        enough that unpopular virtual nodes move away.
        """
        return self.queries_this_epoch / self.query_capacity

    def record_queries(self, count: float) -> None:
        """Charge queries to this server; fractional shares are allowed.

        The simulator routes a partition's epoch queries to its replicas
        as (possibly fractional) shares rather than individual query
        objects, so the counter is a float.
        """
        if count < 0:
            raise ValueError(f"query count must be >= 0, got {count}")
        self.queries_this_epoch += count

    # -- epoch lifecycle ----------------------------------------------------

    def begin_epoch(self) -> None:
        """Reset per-epoch counters and bandwidth budgets."""
        self.queries_this_epoch = 0.0
        self.replication_budget.reset()
        self.migration_budget.reset()

    def fail(self) -> None:
        """Mark the server as failed; its replicas are lost instantly."""
        self.alive = False

    def restore(self) -> None:
        """Bring a failed server back, empty."""
        self.alive = True
        self.storage_used = 0
        self.queries_this_epoch = 0.0
        self.replication_budget.reset()
        self.migration_budget.reset()

    def __str__(self) -> str:
        state = "up" if self.alive else "DOWN"
        return (
            f"Server#{self.server_id}[{self.location}] "
            f"{state} rent={self.monthly_rent}$ "
            f"store={self.storage_used}/{self.storage_capacity}"
        )


def make_server(server_id: int, location: Location, *,
                monthly_rent: float = 100.0,
                storage_capacity: int = 50 * GB,
                query_capacity: int = 1_000_000,
                confidence: float = 1.0,
                replication_budget: Optional[int] = None,
                migration_budget: Optional[int] = None) -> Server:
    """Convenience constructor with the paper's bandwidth defaults."""
    return Server(
        server_id=server_id,
        location=location,
        monthly_rent=monthly_rent,
        storage_capacity=storage_capacity,
        query_capacity=query_capacity,
        confidence=confidence,
        replication_budget=BandwidthBudget(
            DEFAULT_REPLICATION_BUDGET if replication_budget is None
            else replication_budget
        ),
        migration_budget=BandwidthBudget(
            DEFAULT_MIGRATION_BUDGET if migration_budget is None
            else migration_budget
        ),
    )
