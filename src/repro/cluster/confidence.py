"""Server confidence model.

The paper weighs every replica pair by the *confidence* of the two hosting
servers (eq. 2): a subjective [0, 1] estimate combining technical factors
(hardware quality, track record) with non-technical ones (political and
economic stability of the hosting country).  The evaluation assigns equal
confidence to all servers; this module provides that default plus a small
composable model so differentiated-confidence scenarios can be expressed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.cluster.location import Location


class ConfidenceError(ValueError):
    """Raised for confidence values outside [0, 1]."""


def validate_confidence(value: float) -> float:
    """Return ``value`` if it is a valid confidence, else raise."""
    if not 0.0 <= value <= 1.0:
        raise ConfidenceError(f"confidence must be in [0, 1], got {value}")
    return float(value)


@dataclass
class ConfidenceModel:
    """Assigns a confidence to every server location.

    The effective confidence of a server is the product of:

    * ``base`` — cloud-wide default (the paper's experiments use 1.0);
    * an optional per-country factor (political/economic stability);
    * an optional per-server override keyed by server id.

    Factors multiply so a shaky country can only lower confidence, never
    raise it above the per-server override.
    """

    base: float = 1.0
    country_factors: Dict[int, float] = field(default_factory=dict)
    server_overrides: Dict[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        validate_confidence(self.base)
        for country, factor in self.country_factors.items():
            if not 0.0 <= factor <= 1.0:
                raise ConfidenceError(
                    f"country {country} factor must be in [0, 1], got {factor}"
                )
        for server_id, value in self.server_overrides.items():
            if not 0.0 <= value <= 1.0:
                raise ConfidenceError(
                    f"server {server_id} override must be in [0, 1], got {value}"
                )

    def for_server(self, server_id: int, location: Location) -> float:
        """Effective confidence of one server."""
        if server_id in self.server_overrides:
            return self.server_overrides[server_id]
        factor = self.country_factors.get(location.country, 1.0)
        return self.base * factor

    def with_country(self, country: int, factor: float) -> "ConfidenceModel":
        """Return a copy with one country factor added/replaced."""
        factors = dict(self.country_factors)
        factors[country] = factor
        return ConfidenceModel(
            base=self.base,
            country_factors=factors,
            server_overrides=dict(self.server_overrides),
        )

    def with_server(self, server_id: int, value: float) -> "ConfidenceModel":
        """Return a copy with one per-server override added/replaced."""
        overrides = dict(self.server_overrides)
        overrides[server_id] = validate_confidence(value)
        return ConfidenceModel(
            base=self.base,
            country_factors=dict(self.country_factors),
            server_overrides=overrides,
        )


def uniform_confidence(value: float = 1.0) -> ConfidenceModel:
    """The paper's experimental setting: every server equally trusted."""
    return ConfidenceModel(base=validate_confidence(value))


def from_mapping(mapping: Mapping[int, float],
                 default: float = 1.0) -> ConfidenceModel:
    """Build a model from an explicit ``server_id -> confidence`` mapping."""
    model = ConfidenceModel(base=validate_confidence(default))
    for server_id, value in mapping.items():
        model.server_overrides[server_id] = validate_confidence(value)
    return model


def blended(technical: float, stability: float,
            weight: Optional[float] = None) -> float:
    """Combine a technical score with a country-stability score.

    With ``weight`` w in [0, 1] the result is ``w·technical +
    (1-w)·stability``; without a weight the geometric mean is used, which
    punishes imbalance between the two factors (a top-grade server in an
    unstable country should not look highly confident).
    """
    validate_confidence(technical)
    validate_confidence(stability)
    if weight is None:
        return (technical * stability) ** 0.5
    if not 0.0 <= weight <= 1.0:
        raise ConfidenceError(f"weight must be in [0, 1], got {weight}")
    return weight * technical + (1.0 - weight) * stability
