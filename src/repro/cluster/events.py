"""Scheduled cloud events: server arrivals, failures and scoped outages.

The Fig. 3 experiment adds 20 servers at epoch 100 and removes 20
different servers at epoch 200.  This module expresses such schedules as
declarative event lists the simulator applies at epoch boundaries, plus
correlated-failure helpers (rack / room / datacenter outages) matching
the failure modes the introduction motivates (a PDU failure takes out
~500-1000 machines, a rack failure ~40-80).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.server import GB
from repro.cluster.topology import Cloud, CloudLayout, fresh_locations


class EventError(ValueError):
    """Raised for malformed event schedules."""


@dataclass(frozen=True)
class AddServers:
    """Add ``count`` servers at ``epoch`` (resource upgrade)."""

    epoch: int
    count: int
    storage_capacity: int = 50 * GB
    query_capacity: int = 1_000_000
    monthly_rent: float = 100.0

    def __post_init__(self) -> None:
        if self.epoch < 0:
            raise EventError(f"epoch must be >= 0, got {self.epoch}")
        if self.count <= 0:
            raise EventError(f"count must be > 0, got {self.count}")


@dataclass(frozen=True)
class RemoveServers:
    """Remove ``count`` live servers at ``epoch`` (uncorrelated failures).

    ``exclude_recent`` reproduces the paper's "20 *different* servers are
    removed": servers added by a prior :class:`AddServers` event are not
    candidates when it is set.
    """

    epoch: int
    count: int
    exclude_recent: bool = True

    def __post_init__(self) -> None:
        if self.epoch < 0:
            raise EventError(f"epoch must be >= 0, got {self.epoch}")
        if self.count <= 0:
            raise EventError(f"count must be > 0, got {self.count}")


@dataclass(frozen=True)
class ScopedOutage:
    """Fail every server under one location prefix (rack/room/DC/country).

    ``depth`` selects the blast radius: 2 = country, 3 = datacenter,
    4 = room, 5 = rack.  The prefix itself is chosen at apply time from a
    live server picked by the rng, so schedules stay layout-independent.
    """

    epoch: int
    depth: int

    def __post_init__(self) -> None:
        if self.epoch < 0:
            raise EventError(f"epoch must be >= 0, got {self.epoch}")
        if not 1 <= self.depth <= 5:
            raise EventError(f"depth must be in [1, 5], got {self.depth}")


CloudEvent = object  # union of the three dataclasses above


@dataclass
class EventLog:
    """What a schedule actually did, for assertions and reporting."""

    added: Dict[int, List[int]] = field(default_factory=dict)
    removed: Dict[int, List[int]] = field(default_factory=dict)

    def record_added(self, epoch: int, server_ids: Sequence[int]) -> None:
        self.added.setdefault(epoch, []).extend(server_ids)

    def record_removed(self, epoch: int, server_ids: Sequence[int]) -> None:
        self.removed.setdefault(epoch, []).extend(server_ids)

    @property
    def all_added(self) -> List[int]:
        return [sid for ids in self.added.values() for sid in ids]

    @property
    def all_removed(self) -> List[int]:
        return [sid for ids in self.removed.values() for sid in ids]


class EventSchedule:
    """Applies a list of :class:`CloudEvent` to a :class:`Cloud`.

    The simulator calls :meth:`apply` at the start of every epoch; events
    whose epoch matches fire in list order.  Removal events report the
    failed server ids so the replica catalog can drop the lost replicas.
    """

    def __init__(self, events: Sequence[CloudEvent] = (),
                 layout: Optional[CloudLayout] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        self._events: List[CloudEvent] = sorted(
            events, key=lambda e: e.epoch  # type: ignore[attr-defined]
        )
        self._layout = layout if layout is not None else CloudLayout()
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self.log = EventLog()

    @property
    def events(self) -> Tuple[CloudEvent, ...]:
        return tuple(self._events)

    def events_at(self, epoch: int) -> List[CloudEvent]:
        return [e for e in self._events if e.epoch == epoch]  # type: ignore

    def apply(self, epoch: int, cloud: Cloud,
              kill_only: bool = False) -> Tuple[List[int], List[int]]:
        """Fire this epoch's events; return (added_ids, removed_ids).

        ``kill_only`` is the faulty-network mode: victims ``fail()`` in
        place (slot, diversity row and catalog entries retained) instead
        of leaving the cloud — actual removal completes only when the
        gossip layer *detects* the death.  Victim selection then draws
        from the physically-live servers, which is exactly the candidate
        list the default mode sees (dead servers have already left the
        cloud there), so the rng draws are identical in both modes for
        any schedule whose deaths are all detected before the next
        event fires — in particular always under a zero-fault network.
        """
        added: List[int] = []
        removed: List[int] = []
        for event in self.events_at(epoch):
            if isinstance(event, AddServers):
                added.extend(self._apply_add(event, cloud))
            elif isinstance(event, RemoveServers):
                removed.extend(
                    self._apply_remove(event, cloud, kill_only)
                )
            elif isinstance(event, ScopedOutage):
                removed.extend(
                    self._apply_outage(event, cloud, kill_only)
                )
            else:
                raise EventError(f"unknown event type: {event!r}")
        if added:
            self.log.record_added(epoch, added)
        if removed:
            self.log.record_removed(epoch, removed)
        return added, removed

    def _apply_add(self, event: AddServers, cloud: Cloud) -> List[int]:
        existing = [s.location for s in cloud]
        locations = fresh_locations(self._layout, existing, event.count)
        servers = cloud.spawn_servers(
            locations,
            monthly_rent=event.monthly_rent,
            storage_capacity=event.storage_capacity,
            query_capacity=event.query_capacity,
        )
        return [server.server_id for server in servers]

    def _apply_remove(self, event: RemoveServers, cloud: Cloud,
                      kill_only: bool = False) -> List[int]:
        if kill_only:
            candidates = [
                sid for sid in cloud.server_ids
                if cloud.server(sid).alive
            ]
        else:
            candidates = list(cloud.server_ids)
        if event.exclude_recent:
            recent = set(self.log.all_added)
            spared = [sid for sid in candidates if sid not in recent]
            if len(spared) >= event.count:
                candidates = spared
        if event.count > len(candidates):
            raise EventError(
                f"cannot remove {event.count} servers, only "
                f"{len(candidates)} candidates"
            )
        chosen = self._rng.choice(
            len(candidates), size=event.count, replace=False
        )
        victims = [candidates[i] for i in chosen]
        if kill_only:
            for sid in victims:
                cloud.server(sid).fail()
        else:
            cloud.remove_servers(victims)
        return victims

    def _apply_outage(self, event: ScopedOutage, cloud: Cloud,
                      kill_only: bool = False) -> List[int]:
        if kill_only:
            ids = [
                sid for sid in cloud.server_ids
                if cloud.server(sid).alive
            ]
        else:
            ids = cloud.server_ids
        if not ids:
            return []
        pivot_id = ids[int(self._rng.integers(len(ids)))]
        prefix = cloud.server(pivot_id).location.prefix(event.depth)
        if kill_only:
            victims = [
                s.server_id
                for s in cloud
                if s.alive and s.location.prefix(event.depth) == prefix
            ]
            for sid in victims:
                cloud.server(sid).fail()
            return victims
        victims = [
            s.server_id
            for s in cloud
            if s.location.prefix(event.depth) == prefix
        ]
        cloud.remove_servers(victims)
        return victims


def fig3_schedule(*, add_epoch: int = 100, remove_epoch: int = 200,
                  count: int = 20,
                  layout: Optional[CloudLayout] = None,
                  storage_capacity: int = 50 * GB,
                  query_capacity: int = 1_000_000,
                  rng: Optional[np.random.Generator] = None) -> EventSchedule:
    """The Fig. 3 schedule: +20 servers at epoch 100, −20 at epoch 200."""
    return EventSchedule(
        [
            AddServers(
                epoch=add_epoch,
                count=count,
                storage_capacity=storage_capacity,
                query_capacity=query_capacity,
            ),
            RemoveServers(epoch=remove_epoch, count=count),
        ],
        layout=layout,
        rng=rng,
    )
