"""Single-availability-level ablation: no differentiation.

Without Skute's multiple virtual rings, a shared cloud must offer every
application the *strictest* availability any tenant demands (§I's
argument for per-ring differentiation).  This transform rewrites a
scenario so every ring carries the maximum threshold / replica target,
and the ablation bench compares its storage and rent cost against the
differentiated original.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Tuple

from repro.sim.config import SimConfig


class AblationError(ValueError):
    """Raised when a scenario cannot be transformed."""


def strictest_level(config: SimConfig) -> Tuple[float, int]:
    """The maximum (threshold, target_replicas) over all rings."""
    rings = [r for app in config.apps for r in app.rings]
    if not rings:
        raise AblationError("scenario has no rings")
    threshold = max(r.threshold for r in rings)
    replicas = max(r.target_replicas for r in rings)
    return threshold, replicas


def undifferentiated(config: SimConfig) -> SimConfig:
    """Every application pinned to the strictest availability level.

    Models the no-virtual-rings alternative: one shared availability
    class sized for the most demanding tenant.  All other scenario
    parameters are untouched so cost deltas are attributable to the
    missing differentiation alone.
    """
    threshold, replicas = strictest_level(config)
    new_apps = []
    for app in config.apps:
        new_rings = tuple(
            replace(ring, threshold=threshold, target_replicas=replicas)
            for ring in app.rings
        )
        new_apps.append(replace(app, rings=new_rings))
    return replace(config, apps=tuple(new_apps))


def expected_replica_bytes(config: SimConfig) -> int:
    """Steady-state replica bytes implied by each ring's target degree.

    A planning helper for the ablation tables: initial primary bytes ×
    target replicas, summed over rings.
    """
    total = 0
    for app in config.apps:
        for ring in app.rings:
            total += (
                ring.partitions
                * ring.initial_partition_size
                * ring.target_replicas
            )
    return total
