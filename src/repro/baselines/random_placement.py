"""Random-placement ablation: the economy minus eq. 3.

Runs the full §II-C decision process (availability repair, hysteresis,
suicide, migration, economic replication) but replaces the eq. 3
candidate scoring with a uniformly random feasible server.  Comparing
it against the full policy isolates what diversity-aware, cost-aware
placement itself contributes to availability and cost.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.board import PriceBoard
from repro.core.decision import DecisionEngine
from repro.core.placement import Candidate, PlacementScorer
from repro.sim.engine import SimContext


class RandomScorer(PlacementScorer):
    """Drop-in scorer that ignores scores and picks a random candidate.

    Feasibility masking (alive, storage, not-already-hosting, max rent)
    is identical to the real scorer; only the argmax is replaced by a
    uniform draw, so differences in outcomes are attributable to the
    *choice*, not to feasibility.
    """

    #: Every ``best`` call consumes a draw: the decision engine must
    #: not skip calls, or the stream would depend on the skip logic.
    best_is_pure = False

    def __init__(self, cloud, board, rng: np.random.Generator,
                 rent_weight: float = 1.0) -> None:
        super().__init__(cloud, board, rent_weight=rent_weight)
        self._rng = rng

    def best(self, replica_servers: Sequence[int], *,
             need_bytes: int = 0,
             g: Optional[np.ndarray] = None,
             max_rent: Optional[float] = None,
             exclude: Sequence[int] = (),
             budget: Optional[str] = None,
             headroom_fraction: float = 0.0,
             cache_key: Optional[object] = None,
             memo_key: Optional[object] = None) -> Optional[Candidate]:
        # ``cache_key`` identifies the replica set for eq. 3 gain
        # caching and ``memo_key`` the shared-argmax memo; the random
        # ablation never scores (and must consume one rng draw per
        # call — ``best_is_pure`` is False, so callers always pass
        # ``memo_key=None``), so both are unused.
        ids = self.server_ids
        blocked = set(replica_servers) | set(exclude)
        headroom = (
            self._budget_headroom(budget) if budget is not None else None
        )
        feasible: List[int] = []
        for i, sid in enumerate(ids):
            if sid in blocked:
                continue
            if not self._alive[i]:
                continue
            need = need_bytes + int(self._capacity[i] * headroom_fraction)
            if self._storage[i] < need:
                continue
            if max_rent is not None and self._rents[i] >= max_rent:
                continue
            if headroom is not None and headroom[i] < need_bytes:
                continue
            feasible.append(i)
        if not feasible:
            return None
        idx = feasible[int(self._rng.integers(len(feasible)))]
        div_sum = 0.0
        for sid in replica_servers:
            if sid in self._cloud:
                div_sum += float(self._cloud.diversity_row(sid)[idx])
        return Candidate(
            server_id=ids[idx],
            score=float("nan"),
            diversity_gain=div_sum * float(self._conf[idx]),
            rent=float(self._rents[idx]),
        )


class RandomPlacementDecider(DecisionEngine):
    """The economic policy with random (feasible) candidate selection."""

    def __init__(self, *args, rng: Optional[np.random.Generator] = None,
                 **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def _make_scorer(self, board: PriceBoard) -> RandomScorer:
        return RandomScorer(
            self._cloud, board, self._rng,
            rent_weight=self._policy.rent_weight,
        )


def random_placement_decider(ctx: SimContext) -> RandomPlacementDecider:
    """Factory for :class:`~repro.sim.engine.Simulation`."""
    return RandomPlacementDecider(
        ctx.cloud, ctx.rings, ctx.catalog, ctx.registry, ctx.transfers,
        ctx.policy, rent_model=ctx.rent_model,
        kernel=ctx.kernel, avail_index=ctx.avail_index,
    )
