"""Static Dynamo-style replication baseline.

The comparison point the paper positions itself against (§I, [5]): a
fixed replication degree per ring with placement on the key's successor
servers, no economics, no geographic awareness and no adaptation.  The
baseline runs under the identical substrate (same cloud, rings,
catalog, budgets, workload) so ablation benches isolate the value of
the virtual economy itself.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.core.board import PriceBoard
from repro.core.decision import DecisionEngine, DecisionStats
from repro.ring.hashing import hash_key
from repro.ring.partition import Partition
from repro.sim.engine import SimContext
from repro.workload.mix import EpochLoad


class StaticDecider(DecisionEngine):
    """Fixed-count successor placement; repairs count, never optimises.

    Inherits the settlement path (agents still pay rent and earn
    utility, so cost metrics stay comparable) but replaces the entire
    §II-C decision pass: every partition simply keeps
    ``ring.level.target_replicas`` copies on the first feasible servers
    clockwise from its hash position.
    """

    def decide(self, board: PriceBoard, load: EpochLoad,
               rng: np.random.Generator,
               g_of_app: Optional[Dict[int, np.ndarray]] = None
               ) -> DecisionStats:
        stats = DecisionStats()
        for ring in self._rings:
            target = ring.level.target_replicas
            for partition in ring:
                self._top_up(partition, target, stats)
        return stats

    def _successor_order(self, partition: Partition) -> List[int]:
        """Server ids ordered clockwise from the partition's position."""
        ids = self._cloud.server_ids
        ranked = sorted(ids, key=lambda sid: hash_key(f"server:{sid}"))
        position = partition.key_range.end
        # First server whose hash exceeds the partition position.
        start = 0
        for i, sid in enumerate(ranked):
            if hash_key(f"server:{sid}") >= position:
                start = i
                break
        return ranked[start:] + ranked[:start]

    def _top_up(self, partition: Partition, target: int,
                stats: DecisionStats) -> None:
        pid = partition.pid
        servers = self._live_replicas(pid)
        if not servers:
            stats.lost_partitions += 1
            return
        if len(servers) >= target:
            return
        order = self._successor_order(partition)
        for candidate in order:
            if len(servers) >= target:
                break
            if candidate in servers:
                continue
            server = self._cloud.server(candidate)
            if not server.can_store(partition.size):
                continue
            source = self._pick_source(servers, partition.size)
            if source is None:
                stats.deferred += 1
                return
            result = self._transfers.replicate(partition, source, candidate)
            if not result.ok:
                stats.deferred += 1
                return
            self._registry.spawn(pid, candidate)
            stats.repairs += 1
            servers = self._live_replicas(pid)
        if len(servers) < target:
            stats.unsatisfied_partitions += 1


def static_decider(ctx: SimContext) -> StaticDecider:
    """Factory for :class:`~repro.sim.engine.Simulation`."""
    return StaticDecider(
        ctx.cloud, ctx.rings, ctx.catalog, ctx.registry, ctx.transfers,
        ctx.policy, rent_model=ctx.rent_model,
        kernel=ctx.kernel, avail_index=ctx.avail_index,
    )
