"""Baseline policies and ablation transforms."""

from repro.baselines.random_placement import (
    RandomPlacementDecider,
    RandomScorer,
    random_placement_decider,
)
from repro.baselines.single_ring import (
    AblationError,
    expected_replica_bytes,
    strictest_level,
    undifferentiated,
)
from repro.baselines.static import StaticDecider, static_decider

__all__ = [
    "AblationError",
    "RandomPlacementDecider",
    "RandomScorer",
    "StaticDecider",
    "expected_replica_bytes",
    "random_placement_decider",
    "static_decider",
    "strictest_level",
    "undifferentiated",
]
