#!/usr/bin/env python
"""Quickstart: a Skute cloud as a key-value store with an SLA.

Builds a small geo-distributed cloud, creates one application with a
2-replica availability SLA, lets the virtual economy place and protect
the replicas, and then uses the data-plane KV API (put / get / delete)
against the resulting placement.

The same scenario can be written as a declarative spec
(:mod:`repro.sim.scenario`): ``SPEC`` below compiles to exactly the
hand-built ``SimConfig`` this example teaches, and ``--spec`` dumps it
as JSON for ``python -m repro.cli scenario run``.

Run:            python examples/quickstart.py
Dump the spec:  python examples/quickstart.py --spec quickstart.json
"""

import argparse

from repro import (
    CloudLayout,
    KVStore,
    Router,
    Simulation,
    availability,
)
from repro.cluster import Location
from repro.sim.config import AppConfig, RingConfig, SimConfig
from repro.sim.scenario import (
    ConstraintsSpec,
    FlowsSpec,
    LayoutSpec,
    OperationsSpec,
    ScenarioSpec,
    ServerClassesSpec,
    StructureSpec,
    TenantSpec,
    TierSpec,
    compile_spec,
)

#: The declarative twin of the hand-built config in :func:`make_config`.
SPEC = ScenarioSpec(
    name="quickstart",
    summary="one app, one 2-replica SLA ring on a 96-server toy cloud",
    structure=StructureSpec(
        layout=LayoutSpec(
            countries=4, countries_per_continent=2,
            datacenters_per_country=2, rooms_per_datacenter=1,
            racks_per_room=2, servers_per_rack=3,
        ),
        classes=ServerClassesSpec(
            storage=4 * 1024 * 1024, query_capacity=500
        ),
    ),
    flows=FlowsSpec(base_rate=300.0),
    constraints=ConstraintsSpec(
        tenants=(
            TenantSpec(
                name="quickstart-app", share=1.0,
                tiers=(
                    TierSpec(
                        replicas=2, threshold=20.0, partitions=16,
                        partition_capacity=64 * 1024, initial_size=0,
                        ring_id=0,
                    ),
                ),
            ),
        ),
        replication_budget=1024 * 1024,
        migration_budget=512 * 1024,
    ),
    operations=OperationsSpec(epochs=15),
)


def make_config() -> SimConfig:
    """The scenario spelled out with the raw config dataclasses —
    one app, one ring, SLA of 2 dispersed replicas (threshold 20
    forces at least cross-datacenter pairs)."""
    layout = CloudLayout(
        countries=4, countries_per_continent=2,
        datacenters_per_country=2, rooms_per_datacenter=1,
        racks_per_room=2, servers_per_rack=3,
    )
    return SimConfig(
        layout=layout,
        apps=(
            AppConfig(
                app_id=0,
                name="quickstart-app",
                query_share=1.0,
                rings=(
                    RingConfig(
                        ring_id=0, threshold=20.0, target_replicas=2,
                        partitions=16,
                        partition_capacity=64 * 1024,
                        initial_partition_size=0,
                    ),
                ),
            ),
        ),
        epochs=15,
        server_storage=4 * 1024 * 1024,
        server_query_capacity=500,
        replication_budget=1024 * 1024,
        migration_budget=512 * 1024,
        base_rate=300.0,
    )


def parse_args(argv=None):
    parser = argparse.ArgumentParser(
        description="Skute quickstart: economy-placed KV store"
    )
    parser.add_argument(
        "--spec", metavar="PATH", default=None,
        help="write the scenario spec JSON to PATH and exit "
             "('-' for stdout)",
    )
    return parser.parse_args(argv)


def dump_spec(path: str) -> None:
    if path == "-":
        print(SPEC.to_json())
        return
    with open(path, "w") as fh:
        fh.write(SPEC.to_json() + "\n")
    print(f"wrote {path}")


def main(argv=None) -> None:
    args = parse_args(argv)
    if args.spec:
        dump_spec(args.spec)
        return
    # -- 1. Describe the scenario (the spec compiles to the same thing).
    config = make_config()
    assert compile_spec(SPEC).config == config, \
        "quickstart spec drifted from the hand-built config"
    layout = config.layout

    # -- 2. Let the economy converge: agents replicate until every
    #       partition meets the availability threshold.
    sim = Simulation(config)
    log = sim.run()
    last = log.last
    print(f"cloud: {last.live_servers} servers over "
          f"{layout.countries} countries")
    print(f"after {len(log)} epochs: {last.vnodes_total} replicas for "
          f"{len(sim.rings.all_partitions())} partitions, "
          f"{last.unsatisfied_partitions} below SLA")

    # -- 3. Use the data plane against the converged placement.
    store = KVStore(sim.cloud, sim.rings, sim.catalog)
    store.put(0, 0, "user:42", b'{"name": "Ada"}')
    store.put(0, 0, "user:43", b'{"name": "Grace"}')

    client = Location(1, 0, 0, 0, 0, 0)  # a client in continent 1
    result = store.get(0, 0, "user:42", client=client)
    print(f"get(user:42) -> {result.value!r} served by server "
          f"{result.server_id} at geographic distance {result.distance}")

    # -- 4. Inspect the SLA the economy maintains.
    router = Router(sim.cloud, sim.rings, sim.catalog)
    partition = router.partition_of(0, 0, "user:42")
    replicas = sim.catalog.servers_of(partition.pid)
    avail = availability(sim.cloud, replicas)
    print(f"partition {partition.pid}: replicas on servers {replicas}, "
          f"availability {avail:.0f} (threshold "
          f"{sim.rings.ring(0, 0).level.threshold:.0f})")
    for sid in replicas:
        print(f"  server {sid}: {sim.cloud.server(sid).location}")

    store.delete(0, 0, "user:43")
    print("deleted user:43; contains ->",
          store.contains(0, 0, "user:43"))


if __name__ == "__main__":
    main()
