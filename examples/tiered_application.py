#!/usr/bin/env python
"""Per-data-item availability tiers within one application.

Skute offers "differentiated availability guarantees per data item"
(§I): one application can run several virtual rings at different
availability levels and place each item on the ring matching its
value.  This example models a shop whose order records are critical
(4-replica gold tier) while session caches are expendable (2-replica
standard tier), and prices the difference.

Run:  python examples/tiered_application.py
"""

from repro import KVStore, Simulation, availability, paper_thresholds
from repro.cluster import CloudLayout
from repro.sim.config import AppConfig, RingConfig, SimConfig

GOLD, STANDARD = 0, 1


def main() -> None:
    th = paper_thresholds()
    config = SimConfig(
        layout=CloudLayout(),
        apps=(
            AppConfig(
                app_id=0,
                name="shop",
                query_share=1.0,
                rings=(
                    RingConfig(
                        ring_id=GOLD, threshold=th[4], target_replicas=4,
                        partitions=40,
                    ),
                    RingConfig(
                        ring_id=STANDARD, threshold=th[2],
                        target_replicas=2, partitions=40,
                    ),
                ),
            ),
        ),
        epochs=40,
        base_rate=2000.0,
    )
    sim = Simulation(config)
    log = sim.run()

    gold_ring = sim.rings.ring(0, GOLD)
    std_ring = sim.rings.ring(0, STANDARD)
    gold_vnodes = log.last.vnodes_per_ring[(0, GOLD)]
    std_vnodes = log.last.vnodes_per_ring[(0, STANDARD)]
    print("one application, two availability tiers on one cloud:")
    print(f"  gold tier     : {len(gold_ring)} partitions, "
          f"{gold_vnodes} replicas "
          f"({gold_vnodes / len(gold_ring):.2f} per partition)")
    print(f"  standard tier : {len(std_ring)} partitions, "
          f"{std_vnodes} replicas "
          f"({std_vnodes / len(std_ring):.2f} per partition)")
    ratio = (gold_vnodes / len(gold_ring)) / (std_vnodes / len(std_ring))
    print(f"  gold costs {ratio:.1f}x the storage of standard\n")

    # The data plane picks the tier per item.
    store = KVStore(sim.cloud, sim.rings, sim.catalog)
    store.put(0, GOLD, "order:1001", b'{"total": 99.90}')
    store.put(0, STANDARD, "session:abc", b'{"cart": []}')

    for ring_id, key in ((GOLD, "order:1001"), (STANDARD, "session:abc")):
        ring = sim.rings.ring(0, ring_id)
        partition = ring.lookup(key)
        replicas = sim.catalog.servers_of(partition.pid)
        avail = availability(sim.cloud, replicas)
        tier = "gold" if ring_id == GOLD else "standard"
        print(f"{key!r} [{tier}] -> {len(replicas)} replicas, "
              f"availability {avail:.0f} "
              f"(threshold {ring.level.threshold:.0f})")
        continents = sorted(
            {sim.cloud.server(s).location.continent for s in replicas}
        )
        print(f"   spread over continents {continents}")


if __name__ == "__main__":
    main()
