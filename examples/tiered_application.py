#!/usr/bin/env python
"""Per-data-item availability tiers within one application.

Skute offers "differentiated availability guarantees per data item"
(§I): one application can run several virtual rings at different
availability levels and place each item on the ring matching its
value.  This example models a shop whose order records are critical
(4-replica gold tier) while session caches are expendable (2-replica
standard tier), and prices the difference.

The two-tier tenant is exactly what a :class:`TenantSpec` with two
:class:`TierSpec` entries says; ``SPEC`` below compiles to the same
hand-built config, and ``--spec`` dumps it as JSON for
``python -m repro.cli scenario run``.

Run:            python examples/tiered_application.py
Dump the spec:  python examples/tiered_application.py --spec shop.json
"""

import argparse

from repro import KVStore, Simulation, availability, paper_thresholds
from repro.cluster import CloudLayout
from repro.sim.config import AppConfig, RingConfig, SimConfig
from repro.sim.scenario import (
    ConstraintsSpec,
    FlowsSpec,
    OperationsSpec,
    ScenarioSpec,
    TenantSpec,
    TierSpec,
    compile_spec,
)

GOLD, STANDARD = 0, 1

#: The declarative twin of the hand-built config in :func:`make_config`.
SPEC = ScenarioSpec(
    name="tiered-application",
    summary="one shop tenant with 4-replica gold and 2-replica "
            "standard tiers",
    flows=FlowsSpec(base_rate=2000.0),
    constraints=ConstraintsSpec(
        tenants=(
            TenantSpec(
                name="shop", share=1.0,
                tiers=(
                    TierSpec(replicas=4, partitions=40, ring_id=GOLD),
                    TierSpec(replicas=2, partitions=40,
                             ring_id=STANDARD),
                ),
            ),
        ),
    ),
    operations=OperationsSpec(epochs=40),
)


def make_config() -> SimConfig:
    """The same two-tier shop spelled out with the raw dataclasses."""
    th = paper_thresholds()
    return SimConfig(
        layout=CloudLayout(),
        apps=(
            AppConfig(
                app_id=0,
                name="shop",
                query_share=1.0,
                rings=(
                    RingConfig(
                        ring_id=GOLD, threshold=th[4], target_replicas=4,
                        partitions=40,
                    ),
                    RingConfig(
                        ring_id=STANDARD, threshold=th[2],
                        target_replicas=2, partitions=40,
                    ),
                ),
            ),
        ),
        epochs=40,
        base_rate=2000.0,
    )


def parse_args(argv=None):
    parser = argparse.ArgumentParser(
        description="Gold/standard availability tiers in one application"
    )
    parser.add_argument(
        "--spec", metavar="PATH", default=None,
        help="write the scenario spec JSON to PATH and exit "
             "('-' for stdout)",
    )
    return parser.parse_args(argv)


def dump_spec(path: str) -> None:
    if path == "-":
        print(SPEC.to_json())
        return
    with open(path, "w") as fh:
        fh.write(SPEC.to_json() + "\n")
    print(f"wrote {path}")


def main(argv=None) -> None:
    args = parse_args(argv)
    if args.spec:
        dump_spec(args.spec)
        return
    config = make_config()
    assert compile_spec(SPEC).config == config, \
        "tiered-application spec drifted from the hand-built config"
    sim = Simulation(config)
    log = sim.run()

    gold_ring = sim.rings.ring(0, GOLD)
    std_ring = sim.rings.ring(0, STANDARD)
    gold_vnodes = log.last.vnodes_per_ring[(0, GOLD)]
    std_vnodes = log.last.vnodes_per_ring[(0, STANDARD)]
    print("one application, two availability tiers on one cloud:")
    print(f"  gold tier     : {len(gold_ring)} partitions, "
          f"{gold_vnodes} replicas "
          f"({gold_vnodes / len(gold_ring):.2f} per partition)")
    print(f"  standard tier : {len(std_ring)} partitions, "
          f"{std_vnodes} replicas "
          f"({std_vnodes / len(std_ring):.2f} per partition)")
    ratio = (gold_vnodes / len(gold_ring)) / (std_vnodes / len(std_ring))
    print(f"  gold costs {ratio:.1f}x the storage of standard\n")

    # The data plane picks the tier per item.
    store = KVStore(sim.cloud, sim.rings, sim.catalog)
    store.put(0, GOLD, "order:1001", b'{"total": 99.90}')
    store.put(0, STANDARD, "session:abc", b'{"cart": []}')

    for ring_id, key in ((GOLD, "order:1001"), (STANDARD, "session:abc")):
        ring = sim.rings.ring(0, ring_id)
        partition = ring.lookup(key)
        replicas = sim.catalog.servers_of(partition.pid)
        avail = availability(sim.cloud, replicas)
        tier = "gold" if ring_id == GOLD else "standard"
        print(f"{key!r} [{tier}] -> {len(replicas)} replicas, "
              f"availability {avail:.0f} "
              f"(threshold {ring.level.threshold:.0f})")
        continents = sorted(
            {sim.cloud.server(s).location.continent for s in replicas}
        )
        print(f"   spread over continents {continents}")


if __name__ == "__main__":
    main()
