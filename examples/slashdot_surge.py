#!/usr/bin/env python
"""Riding a Slashdot surge: elastic replication under a 61x load spike.

Reproduces the §III-D experiment in miniature: the query rate climbs
from its baseline to 61x over 25 epochs, then slowly decays.  Watch the
economy replicate popular partitions while the spike builds (balancing
per-server load), then suicide the surplus replicas as traffic fades —
no operator, no global coordinator.

The scenario itself is the ``slashdot-surge`` entry of the declarative
spec registry (:mod:`repro.sim.specs`); this script compiles it and
asserts the compiled config still equals the hand-built factory call
the example used before the registry existed.

Run:            python examples/slashdot_surge.py
Dump the spec:  python examples/slashdot_surge.py --spec surge.json
                python -m repro.cli scenario run surge.json
"""

import argparse

from repro import Simulation, slashdot_scenario
from repro.analysis.stats import jain_index
from repro.sim.scenario import compile_spec
from repro.sim import specs

SPEC = specs.get("slashdot-surge").spec
SURGE = SPEC.flows.surges[0]
EPOCHS = SPEC.operations.epochs
SPIKE_EPOCH = SURGE.spike_epoch


def legacy_config():
    """The pre-registry hand-built factory call (the migration guard)."""
    return slashdot_scenario(
        epochs=EPOCHS,
        spike_epoch=SPIKE_EPOCH,
        ramp_epochs=SURGE.ramp_epochs,
        decay_epochs=SURGE.decay_epochs,
        partitions=60,
        base_rate=2000.0,
        peak_rate=61 * 2000.0,
    )


def parse_args(argv=None):
    parser = argparse.ArgumentParser(
        description="Slashdot surge (registry spec: slashdot-surge)"
    )
    parser.add_argument(
        "--spec", metavar="PATH", default=None,
        help="write the scenario spec JSON to PATH and exit "
             "('-' for stdout)",
    )
    return parser.parse_args(argv)


def dump_spec(path: str) -> None:
    if path == "-":
        print(SPEC.to_json())
        return
    with open(path, "w") as fh:
        fh.write(SPEC.to_json() + "\n")
    print(f"wrote {path}")


def main(argv=None) -> None:
    args = parse_args(argv)
    if args.spec:
        dump_spec(args.spec)
        return
    config = compile_spec(SPEC).config
    assert config == legacy_config(), \
        "slashdot-surge spec drifted from the legacy factory"
    sim = Simulation(config)

    print(f"{'epoch':>6} {'rate':>8} {'vnodes':>7} {'jain':>6} "
          f"{'repl':>5} {'suic':>5}")
    for epoch in range(EPOCHS):
        frame = sim.step()
        if epoch % 10 == 0:
            loads = [s.queries_this_epoch for s in sim.cloud]
            jain = jain_index(loads) if sum(loads) else float("nan")
            print(f"{epoch:>6} {frame.total_queries:>8} "
                  f"{frame.vnodes_total:>7} {jain:>6.2f} "
                  f"{frame.economic_replications:>5} "
                  f"{frame.suicides:>5}")

    log = sim.metrics
    vnodes = log.series("vnodes_total")
    print("\nsummary:")
    print(f"  replicas before spike : {int(vnodes[SPIKE_EPOCH - 1])}")
    print(f"  replicas at peak      : {int(vnodes.max())}")
    print(f"  replicas at the end   : {int(vnodes[-1])}")
    actions = log.action_totals()
    print(f"  economic replications : {actions['economic_replications']}")
    print(f"  suicides (contraction): {actions['suicides']}")
    print(f"  SLA violations at end : {log.last.unsatisfied_partitions}")


if __name__ == "__main__":
    main()
