#!/usr/bin/env python
"""Riding a Slashdot surge: elastic replication under a 61x load spike.

Reproduces the §III-D experiment in miniature: the query rate climbs
from its baseline to 61x over 25 epochs, then slowly decays.  Watch the
economy replicate popular partitions while the spike builds (balancing
per-server load), then suicide the surplus replicas as traffic fades —
no operator, no global coordinator.

Run:  python examples/slashdot_surge.py
"""


from repro import Simulation, slashdot_scenario
from repro.analysis.stats import jain_index

EPOCHS = 220
SPIKE_EPOCH, RAMP, DECAY = 40, 25, 120


def main() -> None:
    config = slashdot_scenario(
        epochs=EPOCHS,
        spike_epoch=SPIKE_EPOCH,
        ramp_epochs=RAMP,
        decay_epochs=DECAY,
        partitions=60,
        base_rate=2000.0,
        peak_rate=61 * 2000.0,
    )
    sim = Simulation(config)

    print(f"{'epoch':>6} {'rate':>8} {'vnodes':>7} {'jain':>6} "
          f"{'repl':>5} {'suic':>5}")
    for epoch in range(EPOCHS):
        frame = sim.step()
        if epoch % 10 == 0:
            loads = [s.queries_this_epoch for s in sim.cloud]
            jain = jain_index(loads) if sum(loads) else float("nan")
            print(f"{epoch:>6} {frame.total_queries:>8} "
                  f"{frame.vnodes_total:>7} {jain:>6.2f} "
                  f"{frame.economic_replications:>5} "
                  f"{frame.suicides:>5}")

    log = sim.metrics
    vnodes = log.series("vnodes_total")
    print("\nsummary:")
    print(f"  replicas before spike : {int(vnodes[SPIKE_EPOCH - 1])}")
    print(f"  replicas at peak      : {int(vnodes.max())}")
    print(f"  replicas at the end   : {int(vnodes[-1])}")
    actions = log.action_totals()
    print(f"  economic replications : {actions['economic_replications']}")
    print(f"  suicides (contraction): {actions['suicides']}")
    print(f"  SLA violations at end : {log.last.unsatisfied_partitions}")


if __name__ == "__main__":
    main()
