#!/usr/bin/env python
"""Surviving correlated failures: a whole datacenter goes dark.

The paper's introduction motivates geographic diversity with exactly
this scenario: "in case of a PDU failure ~500-1000 machines suddenly
disappear, or in case of a rack failure ~40-80 machines instantly go
down".  This example fails an entire datacenter mid-run and shows

* that no partition loses all replicas (diversity paid off),
* how the repair burst restores every SLA within a few epochs,
* where the replacement replicas land.

Run:  python examples/datacenter_outage.py
"""


from repro import Simulation, availability, paper_scenario
from repro.cluster.events import EventSchedule, ScopedOutage
from repro.sim.seeds import RngStreams

OUTAGE_EPOCH = 30
EPOCHS = 60


def main() -> None:
    config = paper_scenario(epochs=EPOCHS, partitions=60)
    events = EventSchedule(
        [ScopedOutage(epoch=OUTAGE_EPOCH, depth=3)],  # depth 3 = datacenter
        layout=config.layout,
        rng=RngStreams(config.seed).events,
    )
    sim = Simulation(config, events=events)

    for epoch in range(EPOCHS):
        frame = sim.step()
        if epoch == OUTAGE_EPOCH - 1:
            before = frame
        if epoch == OUTAGE_EPOCH:
            at_outage = frame
    log = sim.metrics
    after = log.last

    lost_servers = events.log.all_removed
    print(f"datacenter outage at epoch {OUTAGE_EPOCH}: "
          f"{len(lost_servers)} servers vanished "
          f"({before.live_servers} -> {at_outage.live_servers})")

    repairs = log.series("repairs")[OUTAGE_EPOCH:OUTAGE_EPOCH + 10]
    print(f"repair burst (10 epochs after outage): "
          f"{int(repairs.sum())} re-replications")

    print(f"partitions lost outright: {after.lost_partitions} "
          f"(every partition had replicas outside the datacenter)")
    print(f"partitions below SLA at the end: "
          f"{after.unsatisfied_partitions}")

    # Verify the diversity claim explicitly.
    worst_slack = float("inf")
    for ring in sim.rings:
        for p in ring:
            avail = availability(
                sim.cloud, sim.catalog.servers_of(p.pid)
            )
            worst_slack = min(worst_slack, avail - ring.level.threshold)
    print(f"worst availability slack over all partitions: "
          f"{worst_slack:+.0f}")

    # Where did the replacements go?  Count replicas per country.
    per_country = {}
    for pid in sim.catalog.partitions():
        for sid in sim.catalog.servers_of(pid):
            loc = sim.cloud.server(sid).location
            key = (loc.continent, loc.country)
            per_country[key] = per_country.get(key, 0) + 1
    print("replica distribution per (continent, country):")
    for key in sorted(per_country):
        print(f"  {key}: {per_country[key]}")


if __name__ == "__main__":
    main()
