#!/usr/bin/env python
"""Surviving correlated failures: a whole datacenter goes dark.

The paper's introduction motivates geographic diversity with exactly
this scenario: "in case of a PDU failure ~500-1000 machines suddenly
disappear, or in case of a rack failure ~40-80 machines instantly go
down".  This example fails an entire datacenter mid-run and shows

* that no partition loses all replicas (diversity paid off),
* how the repair burst restores every SLA within a few epochs,
* where the replacement replicas land,

then replays the exact same outage under a *lossy gossip control
plane*: detection is no longer instant — the outage has to be noticed
by the failure detector through dropped heartbeats — and the report
shows how many epochs that lag cost and what it did to availability
(the oracle-vs-faulty twin pattern from ``repro.analysis.divergence``).
The faulty twin also carries quorum client traffic through the
stale-view data plane, so next to the detection lag you see what the
lag *served*: replica timeouts, diverted (hinted) writes, and the
consistency-audit verdict over the whole history.

The faulty twin is the ``datacenter-outage`` entry of the declarative
spec registry (:mod:`repro.sim.specs`) — outage event, lossy net and
quorum traffic all in the spec; the oracle twin is the same compiled
config with the net and data plane stripped.  The script asserts both
still equal the hand-built configs the example used before the
registry existed.

Run:            python examples/datacenter_outage.py
Dump the spec:  python examples/datacenter_outage.py --spec outage.json
                python -m repro.cli scenario run outage.json
"""

import argparse
import dataclasses

from repro import Simulation, availability, paper_scenario
from repro.analysis.consistency import audit_history
from repro.analysis.divergence import compare_runs
from repro.analysis.series import first_nonzero_epoch
from repro.net.model import NetConfig
from repro.sim.config import DataPlaneConfig
from repro.sim.scenario import compile_events, compile_spec
from repro.sim import specs

SPEC = specs.get("datacenter-outage").spec
EPOCHS = SPEC.operations.epochs
OUTAGE_EPOCH = SPEC.failure.events[0].epoch

#: A control plane bad enough to notice: every fourth message lost.
FAULTY_NET = NetConfig(
    loss=0.25, rounds_per_epoch=2, suspect_rounds=3, dead_rounds=8
)


def legacy_configs():
    """The pre-registry hand-built configs (the migration guard)."""
    oracle = paper_scenario(epochs=EPOCHS, partitions=60)
    faulty = dataclasses.replace(
        oracle, net=FAULTY_NET, data_plane=DataPlaneConfig()
    )
    return oracle, faulty


def build_sim(config) -> Simulation:
    return Simulation(config, events=compile_events(SPEC, config))


def parse_args(argv=None):
    parser = argparse.ArgumentParser(
        description="Datacenter outage (registry spec: datacenter-outage)"
    )
    parser.add_argument(
        "--spec", metavar="PATH", default=None,
        help="write the scenario spec JSON to PATH and exit "
             "('-' for stdout)",
    )
    return parser.parse_args(argv)


def dump_spec(path: str) -> None:
    if path == "-":
        print(SPEC.to_json())
        return
    with open(path, "w") as fh:
        fh.write(SPEC.to_json() + "\n")
    print(f"wrote {path}")


def main(argv=None) -> None:
    args = parse_args(argv)
    if args.spec:
        dump_spec(args.spec)
        return
    faulty_config = compile_spec(SPEC).config
    config = dataclasses.replace(
        faulty_config, net=None, data_plane=None
    )
    legacy_oracle, legacy_faulty = legacy_configs()
    assert config == legacy_oracle, \
        "datacenter-outage spec drifted from the legacy oracle config"
    assert faulty_config == legacy_faulty, \
        "datacenter-outage spec drifted from the legacy faulty config"
    sim = build_sim(config)

    for epoch in range(EPOCHS):
        frame = sim.step()
        if epoch == OUTAGE_EPOCH - 1:
            before = frame
        if epoch == OUTAGE_EPOCH:
            at_outage = frame
    log = sim.metrics
    after = log.last

    lost_servers = sim.events.log.all_removed
    print(f"datacenter outage at epoch {OUTAGE_EPOCH}: "
          f"{len(lost_servers)} servers vanished "
          f"({before.live_servers} -> {at_outage.live_servers})")

    repairs = log.series("repairs")[OUTAGE_EPOCH:OUTAGE_EPOCH + 10]
    print(f"repair burst (10 epochs after outage): "
          f"{int(repairs.sum())} re-replications")

    print(f"partitions lost outright: {after.lost_partitions} "
          f"(every partition had replicas outside the datacenter)")
    print(f"partitions below SLA at the end: "
          f"{after.unsatisfied_partitions}")

    # Verify the diversity claim explicitly.
    worst_slack = float("inf")
    for ring in sim.rings:
        for p in ring:
            avail = availability(
                sim.cloud, sim.catalog.servers_of(p.pid)
            )
            worst_slack = min(worst_slack, avail - ring.level.threshold)
    print(f"worst availability slack over all partitions: "
          f"{worst_slack:+.0f}")

    # Where did the replacements go?  Count replicas per country.
    per_country = {}
    for pid in sim.catalog.partitions():
        for sid in sim.catalog.servers_of(pid):
            loc = sim.cloud.server(sid).location
            key = (loc.continent, loc.country)
            per_country[key] = per_country.get(key, 0) + 1
    print("replica distribution per (continent, country):")
    for key in sorted(per_country):
        print(f"  {key}: {per_country[key]}")

    # -- same outage, lossy control plane ------------------------------
    faulty = build_sim(faulty_config)
    faulty.run()
    rlog = faulty.robustness

    detections = rlog.series("detections")
    lag = first_nonzero_epoch(detections[OUTAGE_EPOCH:])
    detected_at = None if lag is None else OUTAGE_EPOCH + lag
    print(f"\nsame outage under a lossy gossip net "
          f"(loss={FAULTY_NET.loss:.0%}):")
    print(f"  outage at epoch {OUTAGE_EPOCH}, gossip detected it at "
          f"epoch {detected_at} "
          f"({int(detections.sum())} detections total)")
    totals = rlog.message_totals()["HEARTBEAT"]
    print(f"  heartbeats: {totals['sent']} sent, "
          f"{totals['dropped_loss']} lost in flight")
    print(f"  false-suspicion rate: "
          f"{rlog.false_suspicion_rate():.4%}")

    # What the detection lag looked like to clients: the quorum data
    # plane routed every op through the *believed* view the whole time.
    plane = faulty.data_plane
    dp = rlog.data_plane_summary()
    audit = audit_history(
        plane.history, final_versions=plane.surviving_versions()
    )
    print(f"  data plane while flying blind: "
          f"{dp['reads']} reads / {dp['writes']} writes, "
          f"{dp['replica_timeouts']} replica timeouts (ghosts), "
          f"{dp['suspects_skipped']} healthy replicas skipped on "
          f"suspicion")
    print(f"  hinted handoff: {dp['hints_parked']} parked, "
          f"{dp['hints_drained']} drained, "
          f"{dp['read_repairs']} read-repairs")
    print(f"  consistency audit: "
          f"{'GREEN' if audit.green else 'RED'} — "
          f"{audit.lost_writes} lost writes, "
          f"{audit.stale_reads} strong stale reads, "
          f"{audit.dirty_ghost_reads} dirty ghost reads")

    report = compare_runs(log, faulty.metrics)
    print(f"  availability delta vs instant detection (oracle-faulty): "
          f"mean {report.availability_gap:+.2f}, peak "
          f"{report.peak_availability_gap:+.2f} at epoch "
          f"{report.peak_availability_epoch}")
    deltas = report.deltas()
    print(f"  extra maintenance while flying blind: "
          f"repairs {deltas['repairs']:+.0f}, replication bytes "
          f"{deltas['replication_bytes']:+,.0f}")


if __name__ == "__main__":
    main()
