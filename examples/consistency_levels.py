#!/usr/bin/env python
"""Consistency levels on the quorum data plane.

The economy charges for write propagation between replicas (§II-C);
this example shows the semantics being paid for.  A 3-replica partition
takes writes at different consistency levels while one replica is down,
demonstrating the staleness window of ONE, the read-your-writes
guarantee of QUORUM (R + W > N) and read repair healing the divergence.

The placement run is a declarative spec (``SPEC`` below, a short paper
cloud); ``--spec`` dumps it as JSON for
``python -m repro.cli scenario run``.

Run:            python examples/consistency_levels.py
Dump the spec:  python examples/consistency_levels.py --spec levels.json
"""

import argparse

from repro import Simulation, paper_scenario
from repro.cluster import Location
from repro.sim.scenario import (
    ConstraintsSpec,
    OperationsSpec,
    ScenarioSpec,
    compile_spec,
)
from repro.store.quorum import Level, QuorumError, QuorumKVStore

#: The convergence run: the paper cloud, 30 partitions, 20 epochs.
SPEC = ScenarioSpec(
    name="consistency-levels",
    summary="short paper-cloud run used to place the 3-replica ring",
    constraints=ConstraintsSpec(partitions=30),
    operations=OperationsSpec(epochs=20),
)


def parse_args(argv=None):
    parser = argparse.ArgumentParser(
        description="Quorum consistency levels on a converged placement"
    )
    parser.add_argument(
        "--spec", metavar="PATH", default=None,
        help="write the scenario spec JSON to PATH and exit "
             "('-' for stdout)",
    )
    return parser.parse_args(argv)


def dump_spec(path: str) -> None:
    if path == "-":
        print(SPEC.to_json())
        return
    with open(path, "w") as fh:
        fh.write(SPEC.to_json() + "\n")
    print(f"wrote {path}")


def main(argv=None) -> None:
    args = parse_args(argv)
    if args.spec:
        dump_spec(args.spec)
        return
    # Converge the paper cloud so ring 1 (3-replica SLA) is placed.
    config = compile_spec(SPEC).config
    assert config == paper_scenario(epochs=20, partitions=30), \
        "consistency-levels spec drifted from the legacy factory"
    sim = Simulation(config)
    sim.run()
    store = QuorumKVStore(sim.cloud, sim.rings, sim.catalog)

    app, ring = 1, 1  # the 3-replica application
    key = "profile:1"

    w = store.put(app, ring, key, b"v1", level=Level.ALL)
    replicas = list(w.acked)
    print(f"{key!r} written at ALL to replicas {replicas} "
          f"(version {w.version})")

    # One replica goes dark; a QUORUM write still succeeds.
    victim = replicas[-1]
    sim.cloud.server(victim).fail()
    w2 = store.put(app, ring, key, b"v2", level=Level.QUORUM)
    print(f"server {victim} down -> QUORUM write acked by {w2.acked}, "
          f"missed {w2.missed}")

    try:
        store.put(app, ring, key, b"v3", level=Level.ALL)
    except QuorumError as exc:
        print(f"ALL write correctly refused: {exc}")

    # The dead replica comes back stale.
    sim.cloud.server(victim).restore()
    print(f"divergence across replicas: "
          f"{store.divergence(app, ring, key)} version(s)")

    # A client right next to the stale replica, reading at ONE, can see
    # the old value...
    stale_loc = sim.cloud.server(victim).location
    client = Location(*stale_loc.parts())
    r_one = store.get(app, ring, key, level=Level.ONE, client=client)
    print(f"ONE read near stale replica  -> {r_one.value!r} "
          f"(version {r_one.version})")

    # ...while a QUORUM read must overlap the write quorum and returns
    # the fresh value, repairing the stale copy on the way.
    r_q = store.get(app, ring, key, level=Level.QUORUM, client=client)
    print(f"QUORUM read                  -> {r_q.value!r} "
          f"(version {r_q.version}, repaired {r_q.stale_replicas})")
    print(f"divergence after read repair : "
          f"{store.divergence(app, ring, key)}")


if __name__ == "__main__":
    main()
