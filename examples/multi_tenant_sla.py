#!/usr/bin/env python
"""Multi-tenant differentiated SLAs: the paper's three-application cloud.

Reproduces the §III-A setting in miniature: three applications share
one 200-server cloud through three virtual rings demanding 2, 3 and 4
well-dispersed replicas.  Shows that each ring converges to its own
replication degree, that expensive servers end up underused, and what
each tenant's protection level costs.

The scenario is the ``multi-tenant-sla`` entry of the declarative spec
registry (:mod:`repro.sim.specs`); this script compiles it and asserts
the compiled config still equals the hand-built factory call the
example used before the registry existed.

Run:            python examples/multi_tenant_sla.py
Dump the spec:  python examples/multi_tenant_sla.py --spec sla.json
                python -m repro.cli scenario run sla.json
"""

import argparse

import numpy as np

from repro import Simulation, availability, paper_scenario
from repro.analysis.stats import describe
from repro.sim.reporting import format_table
from repro.sim.scenario import compile_spec
from repro.sim import specs

SPEC = specs.get("multi-tenant-sla").spec


def legacy_config():
    """The pre-registry hand-built factory call (the migration guard)."""
    return paper_scenario(epochs=50, partitions=60)


def parse_args(argv=None):
    parser = argparse.ArgumentParser(
        description="Three-tenant SLAs (registry spec: multi-tenant-sla)"
    )
    parser.add_argument(
        "--spec", metavar="PATH", default=None,
        help="write the scenario spec JSON to PATH and exit "
             "('-' for stdout)",
    )
    return parser.parse_args(argv)


def dump_spec(path: str) -> None:
    if path == "-":
        print(SPEC.to_json())
        return
    with open(path, "w") as fh:
        fh.write(SPEC.to_json() + "\n")
    print(f"wrote {path}")


def main(argv=None) -> None:
    args = parse_args(argv)
    if args.spec:
        dump_spec(args.spec)
        return
    config = compile_spec(SPEC).config
    assert config == legacy_config(), \
        "multi-tenant-sla spec drifted from the legacy factory"
    sim = Simulation(config)
    log = sim.run()
    last = log.last

    print(f"{last.live_servers}-server cloud, "
          f"{last.vnodes_total} virtual nodes after {len(log)} epochs\n")

    rows = []
    for ring in sim.rings:
        spec = config.app(ring.app_id)
        partitions = ring.partitions()
        replica_counts = [
            sim.catalog.replica_count(p.pid) for p in partitions
        ]
        avails = [
            availability(sim.cloud, sim.catalog.servers_of(p.pid))
            for p in partitions
        ]
        rows.append([
            spec.name,
            f"{ring.level.target_replicas}",
            f"{ring.level.threshold:.0f}",
            f"{np.mean(replica_counts):.2f}",
            f"{min(avails):.0f}",
            f"{sum(1 for a in avails if a < ring.level.threshold)}",
        ])
    print(format_table(
        ["tenant", "SLA replicas", "threshold", "mean replicas",
         "min avail", "violations"],
        rows,
    ))

    print("\nwho pays for what (vnodes on expensive 125$ servers):")
    print(f"  expensive servers host {last.vnodes_on_expensive} of "
          f"{last.vnodes_total} vnodes "
          f"({last.vnodes_on_expensive / last.vnodes_total:.1%})")

    loads = describe(list(last.vnodes_per_server.values()))
    print("\nvnode placement balance across servers:")
    print(f"  mean {loads['mean']:.1f}, min {loads['min']:.0f}, "
          f"max {loads['max']:.0f}, Jain {loads['jain']:.3f}, "
          f"Gini {loads['gini']:.3f}")


if __name__ == "__main__":
    main()
