#!/usr/bin/env python
"""Chaos-testing the stale-view data plane: does quorum hold up?

Skute's control plane is gossip: every router acts on a *believed*
membership view that lags reality.  This example measures what that
lag costs the data plane.  It draws randomized-but-reproducible
network fault schedules (loss, partitions, link flaps — storage is
never destroyed), pushes quorum client traffic through the believed
view while the faults run, lets the system quiesce so hinted handoff
drains, and replays the recorded history through the
linearizability-lite consistency audit.

The invariant being demonstrated: under network-only faults the audit
is GREEN — **zero committed QUORUM writes lost** — because every ack
either lives on a replica or is parked as a TTL-bounded hint that
counts as a surviving copy.  Strong stale reads *can* appear while
hints are in flight; the audit reports them as the measured
consistency cost of sloppy quorum.

The base scenario is the ``chaos-consistency`` entry of the
declarative spec registry (:mod:`repro.sim.specs`); each sweep seed
replaces only the chaos draw in the failure tier.  The script asserts
every compiled config still equals the hand-built construction the
example used before the registry existed.

Run:            python examples/chaos_consistency.py
Dump the spec:  python examples/chaos_consistency.py --spec chaos.json
                python -m repro.cli scenario run chaos.json
"""

import argparse
import dataclasses

from repro.sim.chaos import random_fault_schedule
from repro.sim.config import DataPlaneConfig, paper_scenario
from repro.sim.scenario import compile_spec
from repro.sim import specs

BASE_SPEC = specs.get("chaos-consistency").spec
EPOCHS = BASE_SPEC.operations.epochs
SEEDS = (3, 11, 42)


def spec_for(seed: int):
    """The base spec with only the chaos draw swapped out."""
    failure = dataclasses.replace(
        BASE_SPEC.failure,
        chaos=dataclasses.replace(BASE_SPEC.failure.chaos, seed=seed),
    )
    return dataclasses.replace(BASE_SPEC, failure=failure)


def legacy_config(seed: int):
    """The pre-registry hand-built config (the migration guard)."""
    return dataclasses.replace(
        paper_scenario(epochs=EPOCHS, partitions=40),
        net=random_fault_schedule(seed, EPOCHS, quiet_tail=10),
        data_plane=DataPlaneConfig(ops_per_epoch=32),
    )


def parse_args(argv=None):
    parser = argparse.ArgumentParser(
        description="Chaos audit sweep (registry spec: chaos-consistency)"
    )
    parser.add_argument(
        "--spec", metavar="PATH", default=None,
        help="write the scenario spec JSON to PATH and exit "
             "('-' for stdout)",
    )
    return parser.parse_args(argv)


def dump_spec(path: str) -> None:
    if path == "-":
        print(BASE_SPEC.to_json())
        return
    with open(path, "w") as fh:
        fh.write(BASE_SPEC.to_json() + "\n")
    print(f"wrote {path}")


def main(argv=None) -> None:
    args = parse_args(argv)
    if args.spec:
        dump_spec(args.spec)
        return
    for seed in SEEDS:
        compiled = compile_spec(spec_for(seed))
        assert compiled.config == legacy_config(seed), \
            f"chaos-consistency spec (seed {seed}) drifted from legacy"
        net = compiled.config.net
        print(f"schedule #{seed}: loss={net.loss:.1%}, "
              f"{len(net.partitions)} partition window(s), "
              f"{len(net.flaps)} flap window(s)")
        for cut in net.partitions:
            kind = "asymmetric" if cut.asymmetric else "symmetric"
            print(f"  partition depth {cut.depth} ({kind}) over epochs "
                  f"[{cut.start_epoch}, {cut.heal_epoch})")
        for flap in net.flaps:
            print(f"  link flap over epochs "
                  f"[{flap.start_epoch}, {flap.heal_epoch})")

        audit = compiled.run_audit()

        summary = audit.sim.robustness.data_plane_summary()
        print(f"  served {summary['reads']} reads / "
              f"{summary['writes']} writes; "
              f"{summary['replica_timeouts']} ghost timeouts, "
              f"{summary['replica_unreachable']} unreachable, "
              f"{summary['suspects_skipped']} suspects skipped")
        print(f"  repair ladder: hints {summary['hints_parked']}p/"
              f"{summary['hints_drained']}d/{summary['hints_expired']}x "
              f"(peak depth {summary['peak_hint_queue_depth']}), "
              f"{summary['read_repairs']} read-repairs, "
              f"anti-entropy {summary['anti_entropy_keys']} keys")
        print("  " + audit.report.render().replace("\n", "\n  "))
        print()


if __name__ == "__main__":
    main()
