#!/usr/bin/env python
"""Chaos-testing the stale-view data plane: does quorum hold up?

Skute's control plane is gossip: every router acts on a *believed*
membership view that lags reality.  This example measures what that
lag costs the data plane.  It draws randomized-but-reproducible
network fault schedules (loss, partitions, link flaps — storage is
never destroyed), pushes quorum client traffic through the believed
view while the faults run, lets the system quiesce so hinted handoff
drains, and replays the recorded history through the
linearizability-lite consistency audit.

The invariant being demonstrated: under network-only faults the audit
is GREEN — **zero committed QUORUM writes lost** — because every ack
either lives on a replica or is parked as a TTL-bounded hint that
counts as a surviving copy.  Strong stale reads *can* appear while
hints are in flight; the audit reports them as the measured
consistency cost of sloppy quorum.

Run:  python examples/chaos_consistency.py
"""

import dataclasses

from repro.sim.chaos import random_fault_schedule, run_consistency_audit
from repro.sim.config import DataPlaneConfig, paper_scenario

EPOCHS = 40
SEEDS = (3, 11, 42)


def main() -> None:
    for seed in SEEDS:
        net = random_fault_schedule(seed, EPOCHS, quiet_tail=10)
        print(f"schedule #{seed}: loss={net.loss:.1%}, "
              f"{len(net.partitions)} partition window(s), "
              f"{len(net.flaps)} flap window(s)")
        for cut in net.partitions:
            kind = "asymmetric" if cut.asymmetric else "symmetric"
            print(f"  partition depth {cut.depth} ({kind}) over epochs "
                  f"[{cut.start_epoch}, {cut.heal_epoch})")
        for flap in net.flaps:
            print(f"  link flap over epochs "
                  f"[{flap.start_epoch}, {flap.heal_epoch})")

        config = dataclasses.replace(
            paper_scenario(epochs=EPOCHS, partitions=40),
            net=net, data_plane=DataPlaneConfig(ops_per_epoch=32),
        )
        audit = run_consistency_audit(config, settle_epochs=16)

        summary = audit.sim.robustness.data_plane_summary()
        print(f"  served {summary['reads']} reads / "
              f"{summary['writes']} writes; "
              f"{summary['replica_timeouts']} ghost timeouts, "
              f"{summary['replica_unreachable']} unreachable, "
              f"{summary['suspects_skipped']} suspects skipped")
        print(f"  repair ladder: hints {summary['hints_parked']}p/"
              f"{summary['hints_drained']}d/{summary['hints_expired']}x "
              f"(peak depth {summary['peak_hint_queue_depth']}), "
              f"{summary['read_repairs']} read-repairs, "
              f"anti-entropy {summary['anti_entropy_keys']} keys")
        print("  " + audit.report.render().replace("\n", "\n  "))
        print()


if __name__ == "__main__":
    main()
